//! The multi-tenant streaming hub: many mutating matrices, one engine,
//! double-buffered background refresh.
//!
//! A [`StreamHub`] owns one [`Engine`] and a map of **tenants** — each a
//! mutating matrix with its own base `A₀`, pending delta `ΔA`, staleness
//! budget, and version lineage. Updates and queries address tenants by
//! [`TenantId`] (or through a borrowed [`Session`] handle); queries from
//! *all* tenants share the engine's batcher. Query ownership is tracked
//! through the salted binding, so a tenant can drain just its own queue
//! ([`flush_tenant`](StreamHub::flush_tenant), what [`Session::flush`]
//! does) while one hub-wide [`flush`](StreamHub::flush) still answers
//! everything.
//!
//! ## Lifecycle
//!
//! Tenants are not forever: [`evict`](StreamHub::evict) tears one down
//! completely — any in-flight refresh grant is drained, the salted
//! binding is deregistered from the engine (overlay and cache reference
//! released), and the tenant's version chain is removed from the
//! persistence catalog, sparing only revisions another live binding
//! still references — so a long-lived hub serving a churning tenant set
//! leaks neither memory nor spill files. An idle-eviction policy
//! ([`HubConfig::max_idle_polls`]) automates this for tenants that stop
//! sending updates and queries.
//!
//! ## Double-buffered refresh
//!
//! With `async_refresh` on (the default), a staleness refresh never
//! stalls the stream:
//!
//! ```text
//!  trip            launch                      commit (at a poll point)
//!   │                │                            │
//!   ▼                ▼                            ▼
//!  ΔA over budget → snapshot M = A₀ + ΔA ───► worker: LA-Decompose(M)
//!                   captured ← ΔA, ΔA ← ∅        │
//!                   serving: old binding          ▼
//!                   + (captured ∪ ΔA') overlay   swap binding to M,
//!                   (ΔA' = updates during build)  overlay ← ΔA' only
//! ```
//!
//! The old binding plus the full overlay keeps answering exactly while
//! the worker rebuilds; at commit the delta accumulated *during* the
//! rebuild is spliced onto the new binding. Every answer — before,
//! during, and after the swap — bit-matches a cold decompose-and-multiply
//! for integer data, because both representations are the same operator
//! and every reduction is exact.
//!
//! ## Fairness
//!
//! Background rebuilds draw from a shared budget
//! ([`FairnessPolicy::max_inflight`], also the worker-pool size). Tenants
//! whose budget trips while the pool is busy wait in a FIFO queue, so a
//! tenant re-tripping its budget cannot starve the others: with `T`
//! tenants queued, every one of them launches within `T` grant slots.
//! A tenant holds at most one in-flight rebuild; budget trips while one
//! is already running are counted
//! ([`TenantStats::suppressed_triggers`]) instead of double-triggering,
//! and re-checked at commit.

use crate::budget::{AdaptiveBudget, StalenessBudget};
use crate::splice::{SpliceCounters, SpliceStats};
use crate::update::Update;
use crate::worker::{RefreshJob, RefreshWorker};
use amd_engine::{
    CacheStats, Engine, EngineConfig, EngineStats, MatrixId, MultiplyQuery, QueryId, QueryResponse,
};
use amd_obs::{Counter, Histogram, Registry, SpanId, Stopwatch, Telemetry};
use amd_sparse::{ops, CsrMatrix, DeltaBuilder, SparseError, SparseResult};
use amd_spmm::traits::Sigma;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a tenant admitted to a [`StreamHub`]. Stable across
/// refreshes (unlike the engine's [`MatrixId`], which changes whenever
/// the tenant's content does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

/// The hub's shared refresh budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairnessPolicy {
    /// Most background rebuilds in flight at once, hub-wide. This is
    /// also the worker-pool size; tenants beyond it queue FIFO.
    pub max_inflight: usize,
}

impl Default for FairnessPolicy {
    /// One rebuild at a time — strict FIFO across tenants.
    fn default() -> Self {
        Self { max_inflight: 1 }
    }
}

/// When to re-rank the planner *between* refreshes (delta-aware early
/// rebind). The corrected path's predicted cost grows with delta
/// density; once the current binding plus its overlay is predicted
/// slower than a rebind would restore, waiting for the staleness budget
/// just serves queries slowly. Disabled by default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReRankPolicy {
    /// Delta density `nnz(ΔA) / nnz(A₀)` at which the hook starts
    /// evaluating ([`f64::INFINITY`] disables it).
    pub density_threshold: f64,
    /// Rebind early once the corrected prediction
    /// ([`amd_engine::Engine::predict_corrected_seconds`]) exceeds this
    /// factor times the plan's best predicted seconds.
    pub slowdown: f64,
}

impl Default for ReRankPolicy {
    /// Disabled.
    fn default() -> Self {
        Self {
            density_threshold: f64::INFINITY,
            slowdown: 1.0,
        }
    }
}

impl ReRankPolicy {
    /// Evaluate from the given delta density on; rebind as soon as the
    /// corrected prediction is worse than the plan's best at all.
    pub fn at_density(density_threshold: f64) -> Self {
        Self {
            density_threshold,
            slowdown: 1.0,
        }
    }
}

/// Configuration of a [`StreamHub`].
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// The wrapped engine's configuration (cache, planner, batcher).
    pub engine: EngineConfig,
    /// Default staleness budget for admitted tenants
    /// ([`StreamHub::admit_with_budget`] overrides per tenant).
    pub budget: StalenessBudget,
    /// Trigger refreshes from the update path when a budget trips
    /// (`true`, default) or leave them to explicit
    /// [`refresh`](StreamHub::refresh) calls.
    pub auto_refresh: bool,
    /// Rebuild in the background and swap on completion (`true`,
    /// default); `false` compacts synchronously inside the triggering
    /// call, like the original single-tenant engine.
    pub async_refresh: bool,
    /// Shared refresh budget and worker-pool size.
    pub fairness: FairnessPolicy,
    /// Delta-aware early-rebind policy (disabled by default).
    pub rerank: ReRankPolicy,
    /// Adaptive staleness budget: after every refresh, re-derive the
    /// tenant's `max_delta_nnz` from the measured refresh latency vs the
    /// predicted per-entry correction overhead
    /// ([`AdaptiveBudget::derive_nnz`]). Cheap (incremental) refreshes
    /// tighten the budget automatically; expensive cold rebuilds relax
    /// it. `None` (default) keeps budgets fixed.
    pub adaptive: Option<AdaptiveBudget>,
    /// Idle-eviction policy: a tenant that stays inactive (no updates,
    /// no queries) for more than this many hub [`poll`](StreamHub::poll)
    /// points is evicted automatically — binding deregistered, catalog
    /// chain garbage-collected, final stats retired to
    /// [`StreamHub::retired`]. `None` (default) keeps tenants forever;
    /// long-lived hubs serving churning tenant sets should set it.
    pub max_idle_polls: Option<u64>,
    /// Test/bench hook: background workers sleep this long before
    /// decomposing, simulating a slow LA-Decompose so tests can assert
    /// that serving does not block on the rebuild.
    pub decompose_delay: Option<Duration>,
    /// Supervision: how many times a refresh whose worker *panicked* is
    /// automatically requeued (with exponential backoff) before the hub
    /// gives up on the pool and compacts synchronously — the counted
    /// fallback in [`HubStats::sync_fallbacks`]. Serving is bit-exact
    /// throughout either way; this only bounds how long a dying pool is
    /// retried.
    pub max_refresh_retries: u32,
    /// Base backoff before the first supervision retry, doubled per
    /// consecutive retry of the same grant. Zero requeues immediately.
    pub retry_backoff: Duration,
}

impl Default for HubConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            budget: StalenessBudget::default(),
            auto_refresh: true,
            async_refresh: true,
            fairness: FairnessPolicy::default(),
            rerank: ReRankPolicy::default(),
            adaptive: None,
            max_idle_polls: None,
            decompose_delay: None,
            max_refresh_retries: 3,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

impl HubConfig {
    /// Default hub with the given per-tenant staleness budget.
    pub fn with_budget(budget: StalenessBudget) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }
}

/// Per-tenant counters (see [`HubStats`] for the hub-wide sums).
///
/// A point-in-time view folded from the tenant's registry counters
/// (`hub.tenant.<id>.*` in a metrics snapshot) plus the tenant's
/// refresh state — see [`StreamHub::tenant_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Updates accepted (including no-op updates).
    pub updates: u64,
    /// Queries submitted.
    pub queries: u64,
    /// Refreshes completed (sync compactions + committed swaps).
    pub refreshes: u64,
    /// Refreshes triggered early by the re-rank policy rather than the
    /// staleness budget.
    pub early_rebinds: u64,
    /// Budget trips that arrived while a refresh was already queued or
    /// in flight — guarded, not double-triggered.
    pub suppressed_triggers: u64,
    /// Background rebuilds that failed (decompose error or commit
    /// rejection); the captured delta was folded back and serving
    /// continued on the old binding.
    pub refresh_failures: u64,
    /// A background rebuild for this tenant is in flight right now.
    pub refreshing: bool,
    /// The tenant is waiting in the FIFO refresh queue.
    pub queued: bool,
    /// Hub-wide refresh slot (1-based [`HubStats::refreshes_started`]
    /// value) at which this tenant's latest refresh was granted; 0 when
    /// it never refreshed. The fairness probe: with `T` tenants queued,
    /// consecutive grants of the same tenant are at least `T` slots
    /// apart, so no queued tenant waits more than `T` slots.
    pub last_granted_slot: u64,
    /// Incremental-vs-fallback split of this tenant's completed
    /// refreshes (`splice.incremental_refreshes +
    /// splice.fallback_refreshes = refreshes`).
    pub splice: SpliceStats,
    /// The tenant's current adaptively derived `max_delta_nnz` budget
    /// (0 until the first refresh under an [`AdaptiveBudget`] policy).
    pub adaptive_budget_nnz: u64,
}

/// Hub-wide counters. Each counter is the sum of the corresponding
/// [`TenantStats`] counter over all tenants (including tenants since
/// evicted — their contributions stay in the hub totals).
///
/// A point-in-time view folded from the hub's registry counters
/// (`hub.*` in a metrics snapshot) — see [`StreamHub::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Updates accepted across all tenants.
    pub updates: u64,
    /// Queries submitted across all tenants.
    pub queries: u64,
    /// Refreshes launched (background) or performed (sync).
    pub refreshes_started: u64,
    /// Refreshes that committed successfully (sync compactions plus
    /// background swaps); `refreshes_started` = this + `refresh_failures`
    /// + still queued/in-flight rebuilds.
    pub refreshes_completed: u64,
    /// Background rebuilds that failed (decompose error or commit
    /// rejection); the tenant's delta is restored, serving continues on
    /// the old binding, and no error surfaces to unrelated callers.
    pub refresh_failures: u64,
    /// Early rebinds triggered by the re-rank policy.
    pub early_rebinds: u64,
    /// Budget trips suppressed because a refresh was already pending.
    pub suppressed_triggers: u64,
    /// Incremental-vs-fallback split of completed refreshes hub-wide
    /// (`splice.incremental_refreshes + splice.fallback_refreshes =
    /// refreshes_completed`); sum of the per-tenant
    /// [`TenantStats::splice`] counters.
    pub splice: SpliceStats,
    /// Tenants evicted ([`StreamHub::evict`] plus idle evictions).
    pub evictions: u64,
    /// The subset of `evictions` triggered by the
    /// [`max_idle_polls`](HubConfig::max_idle_polls) policy.
    pub idle_evictions: u64,
    /// Worker threads that died (panicked mid-decompose) and were
    /// replaced by supervision. The pool never shrinks: every death is
    /// matched by a respawn before the dead grant is retried.
    pub worker_restarts: u64,
    /// Dead grants requeued by supervision (each with exponential
    /// backoff). Resets nothing: a grant that needs three retries
    /// contributes three.
    pub refresh_retries: u64,
    /// Refreshes compacted synchronously after
    /// [`max_refresh_retries`](HubConfig::max_refresh_retries)
    /// consecutive worker deaths — the bounded-retry escape hatch.
    pub sync_fallbacks: u64,
}

/// Registry handles behind [`HubStats`] plus the hub's refresh-phase
/// latency histograms — the counters are the single source of truth;
/// the stats struct is a fold over them.
struct HubMetrics {
    updates: Counter,
    queries: Counter,
    refreshes_started: Counter,
    refreshes_completed: Counter,
    refresh_failures: Counter,
    early_rebinds: Counter,
    suppressed_triggers: Counter,
    evictions: Counter,
    idle_evictions: Counter,
    worker_restarts: Counter,
    refresh_retries: Counter,
    sync_fallbacks: Counter,
    splice: SpliceCounters,
    /// Worker-measured decompose seconds of committed refreshes
    /// (excluding the test-hook delay) — the same single measurement
    /// that feeds the adaptive budget.
    decompose_seconds: Histogram,
    extract_seconds: Histogram,
    splice_seconds: Histogram,
}

impl HubMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            updates: registry.counter("hub.updates"),
            queries: registry.counter("hub.queries"),
            refreshes_started: registry.counter("hub.refreshes_started"),
            refreshes_completed: registry.counter("hub.refreshes_completed"),
            refresh_failures: registry.counter("hub.refresh_failures"),
            early_rebinds: registry.counter("hub.early_rebinds"),
            suppressed_triggers: registry.counter("hub.suppressed_triggers"),
            evictions: registry.counter("hub.evictions"),
            idle_evictions: registry.counter("hub.idle_evictions"),
            worker_restarts: registry.counter("hub.worker_restarts"),
            refresh_retries: registry.counter("hub.refresh_retries"),
            sync_fallbacks: registry.counter("hub.sync_fallbacks"),
            splice: SpliceCounters::new(registry, "hub."),
            decompose_seconds: registry.histogram("refresh.decompose.seconds"),
            extract_seconds: registry.histogram("refresh.extract.seconds"),
            splice_seconds: registry.histogram("refresh.splice.seconds"),
        }
    }
}

/// Registry handles behind one tenant's [`TenantStats`] counters,
/// named `hub.tenant.<id>.*`; removed from the registry when the
/// tenant is evicted (the hub-wide sums keep its contributions).
struct TenantMetrics {
    updates: Counter,
    queries: Counter,
    refreshes: Counter,
    early_rebinds: Counter,
    suppressed_triggers: Counter,
    refresh_failures: Counter,
    splice: SpliceCounters,
}

impl TenantMetrics {
    fn new(registry: &Registry, id: TenantId) -> Self {
        let prefix = format!("hub.tenant.{}.", id.0);
        Self {
            updates: registry.counter(&format!("{prefix}updates")),
            queries: registry.counter(&format!("{prefix}queries")),
            refreshes: registry.counter(&format!("{prefix}refreshes")),
            early_rebinds: registry.counter(&format!("{prefix}early_rebinds")),
            suppressed_triggers: registry.counter(&format!("{prefix}suppressed_triggers")),
            refresh_failures: registry.counter(&format!("{prefix}refresh_failures")),
            splice: SpliceCounters::new(registry, &prefix),
        }
    }
}

/// A background rebuild in flight for one tenant.
struct InFlight {
    /// The delta snapshot compacted into the rebuild (`merged = base +
    /// captured`). Still being *served* (merged into the overlay) until
    /// the swap commits.
    captured: DeltaBuilder<f64>,
    /// Predicted corrected-path seconds per pending delta entry at
    /// launch time — the adaptive budget's overhead signal, combined at
    /// commit with the worker's measured decompose latency.
    per_entry_seconds: f64,
}

struct Tenant {
    matrix: MatrixId,
    base: CsrMatrix<f64>,
    /// Updates not yet part of any (running or finished) rebuild.
    delta: DeltaBuilder<f64>,
    budget: StalenessBudget,
    /// The engine's overlay no longer matches `captured + delta`.
    overlay_dirty: bool,
    inflight: Option<InFlight>,
    /// Delta length at the last re-rank evaluation: 0 = none since the
    /// last compaction, [`usize::MAX`] = a positive verdict latched
    /// (don't re-evaluate until the delta compacts).
    rerank_mark: usize,
    /// Hub poll points since this tenant's last update or query — the
    /// idle-eviction clock.
    idle_polls: u64,
    metrics: TenantMetrics,
    /// A background rebuild is in flight right now.
    refreshing: bool,
    /// Waiting in the FIFO refresh queue.
    queued: bool,
    /// Hub-wide slot of the latest refresh grant (see
    /// [`TenantStats::last_granted_slot`]).
    last_granted_slot: u64,
    /// Current adaptively derived budget (see
    /// [`TenantStats::adaptive_budget_nnz`]).
    adaptive_budget_nnz: u64,
    /// Root span of the refresh lifecycle in progress (trip → grant →
    /// decompose → commit); [`SpanId::NONE`] when none is pending.
    refresh_span: SpanId,
    /// Consecutive supervision retries of this tenant's refresh (worker
    /// panics); reset to 0 by a successful commit.
    retries: u32,
    /// Backoff the supervisor attached to the next launch of this
    /// tenant's refresh, consumed (taken) by `launch_ready`.
    backoff: Option<Duration>,
}

impl Tenant {
    /// The value currently served at `(row, col)`: base plus every
    /// pending delta layer.
    fn served_value(&self, row: u32, col: u32) -> f64 {
        let captured = self
            .inflight
            .as_ref()
            .map_or(0.0, |f| f.captured.get(row, col));
        self.base.get(row, col) + captured + self.delta.get(row, col)
    }

    /// The full pending correction `captured + delta` as CSR.
    fn overlay_csr(&self) -> SparseResult<CsrMatrix<f64>> {
        match &self.inflight {
            Some(f) => ops::apply_delta(&f.captured.to_csr(), &self.delta.to_csr()),
            None => Ok(self.delta.to_csr()),
        }
    }

    fn needs_refresh(&self) -> bool {
        self.budget
            .exceeded(self.delta.len(), self.delta.mass(), self.base.nnz())
    }

    fn refresh_pending(&self) -> bool {
        self.queued || self.inflight.is_some()
    }

    /// The tenant's counters and refresh state as a [`TenantStats`]
    /// view.
    fn stats_view(&self) -> TenantStats {
        TenantStats {
            updates: self.metrics.updates.get(),
            queries: self.metrics.queries.get(),
            refreshes: self.metrics.refreshes.get(),
            early_rebinds: self.metrics.early_rebinds.get(),
            suppressed_triggers: self.metrics.suppressed_triggers.get(),
            refresh_failures: self.metrics.refresh_failures.get(),
            refreshing: self.refreshing,
            queued: self.queued,
            last_granted_slot: self.last_granted_slot,
            splice: self.metrics.splice.stats(),
            adaptive_budget_nnz: self.adaptive_budget_nnz,
        }
    }
}

/// A multi-tenant streaming hub. See the [module docs](self).
pub struct StreamHub {
    engine: Engine,
    config: HubConfig,
    tenants: HashMap<u64, Tenant>,
    /// Admission order, for stable iteration.
    order: Vec<TenantId>,
    /// FIFO of tenants waiting for a rebuild slot.
    queue: VecDeque<TenantId>,
    worker: Option<RefreshWorker>,
    inflight: usize,
    next_tenant: u64,
    /// Final stats of tenants evicted by the idle policy, in eviction
    /// order (explicit [`evict`](Self::evict) returns them instead).
    retired: Vec<(TenantId, TenantStats)>,
    metrics: HubMetrics,
}

impl StreamHub {
    /// Stands up the engine (and, with `async_refresh`, the worker
    /// pool). No tenants yet — [`admit`](Self::admit) them. Telemetry
    /// is enabled with a fresh registry and tracer — use
    /// [`with_telemetry`](Self::with_telemetry) to share or disable it.
    pub fn new(config: HubConfig) -> SparseResult<Self> {
        Self::with_telemetry(config, Telemetry::new())
    }

    /// [`new`](Self::new) observing into caller-supplied telemetry:
    /// hub, engine, cache, and catalog counters all register there, and
    /// the refresh lifecycle is traced into its tracer. With
    /// [`Telemetry::disabled`] the hub runs uninstrumented — counters
    /// are no-ops, so [`stats`](Self::stats) and the per-tenant views
    /// (including `last_granted_slot`, which is derived from a
    /// counter) read zero.
    pub fn with_telemetry(config: HubConfig, telemetry: Telemetry) -> SparseResult<Self> {
        let engine = Engine::with_telemetry(config.engine.clone(), telemetry)?;
        let worker = config.async_refresh.then(|| {
            RefreshWorker::spawn(
                config.fairness.max_inflight,
                engine.telemetry().tracer.clone(),
            )
        });
        let metrics = HubMetrics::new(&engine.telemetry().registry);
        Ok(Self {
            engine,
            config,
            tenants: HashMap::new(),
            order: Vec::new(),
            queue: VecDeque::new(),
            worker,
            inflight: 0,
            next_tenant: 1,
            retired: Vec::new(),
            metrics,
        })
    }

    /// The hub's telemetry (shared with the wrapped engine): metrics
    /// registry plus the trace ring holding refresh lifecycle spans.
    pub fn telemetry(&self) -> &Telemetry {
        self.engine.telemetry()
    }

    /// Admits a mutating matrix under the hub's default budget. One cold
    /// decompose (or a cache/disk hit) and a full planner ranking.
    pub fn admit(&mut self, a: CsrMatrix<f64>) -> SparseResult<TenantId> {
        self.admit_with_budget(a, self.config.budget)
    }

    /// [`admit`](Self::admit) with a per-tenant staleness budget. The
    /// binding is salted by the tenant id, so tenants with identical
    /// content stay isolated (own overlay, own lineage) while the
    /// decomposition cache still shares the LA-Decompose.
    pub fn admit_with_budget(
        &mut self,
        a: CsrMatrix<f64>,
        budget: StalenessBudget,
    ) -> SparseResult<TenantId> {
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        let id = TenantId(self.next_tenant);
        let matrix = self.engine.register_salted(&a, id.0 as u128)?;
        self.next_tenant += 1;
        let n = a.rows();
        let metrics = TenantMetrics::new(&self.engine.telemetry().registry, id);
        self.tenants.insert(
            id.0,
            Tenant {
                matrix,
                base: a,
                delta: DeltaBuilder::new(n, n),
                budget,
                overlay_dirty: false,
                inflight: None,
                rerank_mark: 0,
                idle_polls: 0,
                metrics,
                refreshing: false,
                queued: false,
                last_granted_slot: 0,
                adaptive_budget_nnz: 0,
                refresh_span: SpanId::NONE,
                retries: 0,
                backoff: None,
            },
        );
        self.order.push(id);
        Ok(id)
    }

    /// A borrowed per-tenant handle (errors for unknown tenants).
    pub fn session(&mut self, tenant: TenantId) -> SparseResult<Session<'_>> {
        self.tenant(tenant)?;
        Ok(Session { hub: self, tenant })
    }

    /// Admitted tenants, in admission order.
    pub fn tenants(&self) -> &[TenantId] {
        &self.order
    }

    fn tenant(&self, id: TenantId) -> SparseResult<&Tenant> {
        self.tenants
            .get(&id.0)
            .ok_or_else(|| SparseError::InvalidCsr(format!("{id} is not admitted")))
    }

    fn tenant_mut(&mut self, id: TenantId) -> SparseResult<&mut Tenant> {
        self.tenants
            .get_mut(&id.0)
            .ok_or_else(|| SparseError::InvalidCsr(format!("{id} is not admitted")))
    }

    /// Applies one update to a tenant's served matrix; returns `true`
    /// when the update tripped (or found tripped) the tenant's staleness
    /// budget — i.e. a refresh was triggered, queued, or (manual mode)
    /// is now required.
    pub fn update(&mut self, tenant: TenantId, update: Update) -> SparseResult<bool> {
        self.touch(tenant);
        self.poll()?;
        let (row, col) = update.position();
        let (needs, pending) = {
            let t = self.tenant_mut(tenant)?;
            let n = t.base.rows();
            if row >= n || col >= n {
                return Err(SparseError::IndexOutOfBounds {
                    row,
                    col,
                    rows: n,
                    cols: n,
                });
            }
            let additive = update.additive(t.served_value(row, col));
            if additive != 0.0 {
                t.delta.add(row, col, additive)?;
                t.overlay_dirty = true;
            }
            t.metrics.updates.inc();
            (t.needs_refresh(), t.refresh_pending())
        };
        self.metrics.updates.inc();
        if needs {
            if pending {
                // Satellite guard: a refresh is already queued or in
                // flight — count the trip, don't double-trigger. The
                // residual budget is re-checked when the swap commits.
                let t = self.tenant_mut(tenant)?;
                t.metrics.suppressed_triggers.inc();
                self.metrics.suppressed_triggers.inc();
            } else if self.config.auto_refresh {
                self.request_refresh(tenant)?;
            }
            return Ok(true);
        }
        // Delta-aware re-rank: between budget trips, rebind early once
        // the corrected path is predicted slower than a rebind would be.
        if !pending && self.rerank_wants_rebind(tenant)? {
            let t = self.tenant_mut(tenant)?;
            t.metrics.early_rebinds.inc();
            self.metrics.early_rebinds.inc();
            if self.config.auto_refresh {
                self.request_refresh(tenant)?;
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Evaluates the [`ReRankPolicy`] for a tenant: above the density
    /// threshold, predict the corrected path's per-iteration seconds on
    /// the current binding and compare with the plan's best. The
    /// evaluation itself is `O(nnz(ΔA))`, so it re-runs only after the
    /// delta has grown by a quarter of the threshold mass since the last
    /// check, and a positive verdict latches (no re-evaluation, and no
    /// double-counted early rebind) until the next compaction.
    fn rerank_wants_rebind(&mut self, tenant: TenantId) -> SparseResult<bool> {
        let policy = self.config.rerank;
        if policy.density_threshold.is_infinite() {
            return Ok(false);
        }
        let (matrix, delta_csr, len) = {
            let t = self.tenant(tenant)?;
            if t.delta.is_empty() || t.rerank_mark == usize::MAX {
                return Ok(false);
            }
            let len = t.delta.len();
            let threshold_nnz = policy.density_threshold * t.base.nnz().max(1) as f64;
            if (len as f64) < threshold_nnz {
                return Ok(false);
            }
            let stride = (threshold_nnz / 4.0).ceil().max(1.0) as usize;
            if t.rerank_mark != 0 && len < t.rerank_mark.saturating_add(stride) {
                return Ok(false);
            }
            (t.matrix, t.delta.to_csr(), len)
        };
        let corrected = self.engine.predict_corrected_seconds(matrix, &delta_csr)?;
        let best = self
            .engine
            .plan_report(matrix)
            .and_then(|p| p.first())
            .map(|p| p.seconds)
            .unwrap_or(f64::INFINITY);
        let rebind = corrected > policy.slowdown * best;
        self.tenant_mut(tenant)?.rerank_mark = if rebind { usize::MAX } else { len };
        Ok(rebind)
    }

    /// Requests a refresh for a tenant: queues/launches a background
    /// rebuild (async) or compacts synchronously. Returns `false` when
    /// there is nothing to do — empty delta, or a refresh already
    /// pending.
    pub fn refresh(&mut self, tenant: TenantId) -> SparseResult<bool> {
        self.touch(tenant);
        self.poll()?;
        self.request_refresh(tenant)
    }

    /// Resets a tenant's idle clock (any sign of life counts).
    fn touch(&mut self, tenant: TenantId) {
        if let Some(t) = self.tenants.get_mut(&tenant.0) {
            t.idle_polls = 0;
        }
    }

    fn request_refresh(&mut self, tenant: TenantId) -> SparseResult<bool> {
        let background = self.worker.is_some();
        let tracer = self.engine.telemetry().tracer.clone();
        {
            let t = self.tenant_mut(tenant)?;
            if t.refresh_pending() || t.delta.is_empty() {
                return Ok(false);
            }
            // Root span of the refresh lifecycle: opened at the trip,
            // closed at commit (or failure, or eviction drain).
            t.refresh_span = tracer.start("refresh", SpanId::NONE, Some(tenant.0));
            if background {
                t.queued = true;
            }
        }
        if background {
            self.queue.push_back(tenant);
            self.launch_ready()?;
        } else {
            self.sync_refresh(tenant)?;
        }
        Ok(true)
    }

    /// Predicted corrected-path seconds per pending delta entry on a
    /// tenant's current binding: (corrected − plan-best) / nnz(ΔA). The
    /// adaptive budget's per-entry overhead signal; 0 when prediction is
    /// unavailable (which relaxes the derived budget to its ceiling).
    fn per_entry_overhead(&self, matrix: MatrixId, delta: &CsrMatrix<f64>) -> f64 {
        let entries = delta.nnz().max(1) as f64;
        let Ok(corrected) = self.engine.predict_corrected_seconds(matrix, delta) else {
            return 0.0;
        };
        let best = self
            .engine
            .plan_report(matrix)
            .and_then(|p| p.first())
            .map(|p| p.seconds)
            .unwrap_or(corrected);
        ((corrected - best) / entries).max(0.0)
    }

    /// The synchronous path: compact in place, exactly like the original
    /// single-tenant engine (blocks for the decompose — incremental when
    /// the prior and the touched set allow it).
    fn sync_refresh(&mut self, tenant: TenantId) -> SparseResult<()> {
        let (old, merged, touched, delta_csr) = {
            let t = self.tenant(tenant)?;
            let delta_csr = t.delta.to_csr();
            let merged = ops::apply_delta(&t.base, &delta_csr)?;
            (t.matrix, merged, t.delta.touched_vertices(), delta_csr)
        };
        let per_entry_seconds = if self.config.adaptive.is_some() {
            self.per_entry_overhead(old, &delta_csr)
        } else {
            0.0
        };
        let tracer = self.engine.telemetry().tracer.clone();
        let sw = Stopwatch::start();
        let (new_id, outcome) = self.engine.refresh_localized(old, &merged, &touched)?;
        let refresh_seconds = sw.elapsed_seconds();
        self.metrics.refreshes_started.inc();
        self.metrics.refreshes_completed.inc();
        self.record_refresh_phases(&outcome);
        let slot = self.metrics.refreshes_started.get();
        let adaptive = self.config.adaptive;
        let t = self
            .tenants
            .get_mut(&tenant.0)
            .expect("tenant validated above");
        t.matrix = new_id;
        t.base = merged;
        t.delta.clear();
        // The old binding carried the overlay away with it; the fresh
        // binding serves the compacted base directly.
        t.overlay_dirty = false;
        t.metrics.refreshes.inc();
        t.last_granted_slot = slot;
        t.rerank_mark = 0;
        t.metrics.splice.record(&outcome);
        self.metrics.splice.record(&outcome);
        let span = std::mem::replace(&mut t.refresh_span, SpanId::NONE);
        tracer.event(
            if outcome.incremental {
                "splice"
            } else {
                "fallback"
            },
            span,
            Some(tenant.0),
            format!(
                "affected={} total={}",
                outcome.affected_vertices, outcome.total_vertices
            ),
        );
        tracer.end_with(span, format!("sync committed in {refresh_seconds:.3e}s"));
        if let Some(policy) = adaptive {
            let nnz = policy.retune(&mut t.budget, refresh_seconds, per_entry_seconds);
            t.adaptive_budget_nnz = nnz as u64;
        }
        Ok(())
    }

    /// Records a committed refresh's phase timings into the hub's
    /// latency histograms (one sample per phase per refresh).
    fn record_refresh_phases(&self, outcome: &arrow_core::incremental::RefreshOutcome) {
        self.metrics
            .extract_seconds
            .record_seconds(outcome.timings.extract_seconds);
        self.metrics
            .decompose_seconds
            .record_seconds(outcome.timings.decompose_seconds);
        self.metrics
            .splice_seconds
            .record_seconds(outcome.timings.splice_seconds);
    }

    /// Launches queued rebuilds while the shared budget has room.
    fn launch_ready(&mut self) -> SparseResult<()> {
        let tracer = self.engine.telemetry().tracer.clone();
        while self.inflight < self.config.fairness.max_inflight.max(1) {
            let Some(tenant) = self.queue.pop_front() else {
                return Ok(());
            };
            let base_delay = self.config.decompose_delay;
            let (delay, old) = {
                let t = self.tenant_mut(tenant)?;
                t.queued = false;
                // The supervisor's retry backoff stacks on top of the
                // test-hook delay (both are worker-side sleeps).
                let delay = match (t.backoff.take(), base_delay) {
                    (Some(b), Some(d)) => Some(b + d),
                    (Some(b), None) => Some(b),
                    (None, d) => d,
                };
                // Drained meanwhile (e.g. by a manual sync refresh).
                if t.delta.is_empty() {
                    let span = std::mem::replace(&mut t.refresh_span, SpanId::NONE);
                    tracer.end_with(span, "drained before launch".to_string());
                    continue;
                }
                (delay, t.matrix)
            };
            // Snapshot outside the borrow: merged = base + delta, plus
            // the touched set that localizes the re-decomposition.
            let (merged, touched, delta_csr) = {
                let t = self.tenant(tenant)?;
                let delta_csr = t.delta.to_csr();
                let merged = ops::apply_delta(&t.base, &delta_csr)?;
                (merged, t.delta.touched_vertices(), delta_csr)
            };
            let per_entry_seconds = if self.config.adaptive.is_some() {
                self.per_entry_overhead(old, &delta_csr)
            } else {
                0.0
            };
            let ticket = self
                .engine
                .prepare_refresh_localized(old, &merged, touched)?;
            self.metrics.refreshes_started.inc();
            let slot = self.metrics.refreshes_started.get();
            let span = {
                let t = self.tenant_mut(tenant)?;
                let n = t.base.rows();
                let captured = std::mem::replace(&mut t.delta, DeltaBuilder::new(n, n));
                t.inflight = Some(InFlight {
                    captured,
                    per_entry_seconds,
                });
                t.refreshing = true;
                t.last_granted_slot = slot;
                t.rerank_mark = 0;
                // Serving switches to the captured overlay (the live
                // delta just emptied); resync before the next run.
                t.overlay_dirty = true;
                tracer.event(
                    "grant",
                    t.refresh_span,
                    Some(tenant.0),
                    format!("slot={slot}"),
                );
                // The decompose span travels with the job; the worker
                // thread closes it when the decompose finishes.
                tracer.start("decompose", t.refresh_span, Some(tenant.0))
            };
            self.inflight += 1;
            self.worker
                .as_ref()
                .expect("launch_ready only runs in async mode")
                .submit(RefreshJob {
                    tenant,
                    merged,
                    ticket,
                    delay,
                    span,
                });
        }
        Ok(())
    }

    /// Drains finished rebuilds (non-blocking), commits their swaps, and
    /// launches queued work into the freed slots. Called internally at
    /// every entry point; call it directly when idling between events.
    /// Returns the number of swaps committed.
    pub fn poll(&mut self) -> SparseResult<usize> {
        let mut committed = 0;
        if self.worker.is_some() {
            while let Some(done) = self.worker.as_ref().and_then(|w| w.try_done()) {
                if self.commit(done)? {
                    committed += 1;
                }
            }
            self.launch_ready()?;
        }
        self.sweep_idle()?;
        Ok(committed)
    }

    /// The idle-eviction pass of [`poll`](Self::poll): advance every
    /// tenant's idle clock and evict those past
    /// [`max_idle_polls`](HubConfig::max_idle_polls). A tenant with a
    /// rebuild queued/in flight, queries pending, or a **non-empty
    /// delta** is skipped (its clock keeps running; it goes at a later
    /// poll once quiescent) — idle eviction must never discard
    /// acknowledged updates that were never compacted, unlike an
    /// explicit [`evict`](Self::evict), where dropping the pending
    /// delta is the caller's stated intent.
    fn sweep_idle(&mut self) -> SparseResult<()> {
        let Some(max) = self.config.max_idle_polls else {
            return Ok(());
        };
        let mut victims = Vec::new();
        for (&id, t) in self.tenants.iter_mut() {
            t.idle_polls += 1;
            if t.idle_polls > max
                && t.inflight.is_none()
                && !t.queued
                && t.delta.is_empty()
                && self.engine.pending_for(t.matrix) == 0
            {
                victims.push(TenantId(id));
            }
        }
        victims.sort();
        for v in victims {
            let stats = self.evict_now(v)?;
            self.metrics.idle_evictions.inc();
            self.retired.push((v, stats));
        }
        Ok(())
    }

    /// Evicts a tenant: its pending queries must be flushed first (the
    /// engine's ownership check refuses otherwise), any queued or
    /// in-flight background rebuild is **drained** — the grant is given
    /// up without committing, other tenants' completions commit
    /// normally — the salted binding is deregistered (overlay and cache
    /// reference released), and the tenant's catalog version chain is
    /// removed, sparing only revisions another live binding still
    /// depends on. Returns the tenant's final [`TenantStats`]; the hub
    /// no longer knows the id afterwards. Any pending (un-compacted)
    /// delta is discarded with the tenant — eviction is a teardown, not
    /// a checkpoint; refresh first if the mutations must survive.
    pub fn evict(&mut self, tenant: TenantId) -> SparseResult<TenantStats> {
        self.poll()?;
        let matrix = self.tenant(tenant)?.matrix;
        let pending = self.engine.pending_for(matrix);
        if pending > 0 {
            return Err(SparseError::InvalidCsr(format!(
                "{tenant} still owns {pending} pending quer{}; \
                 flush_tenant before evicting",
                if pending == 1 { "y" } else { "ies" }
            )));
        }
        let tracer = self.engine.telemetry().tracer.clone();
        // Give back a queued (not yet launched) grant.
        if let Some(pos) = self.queue.iter().position(|&t| t == tenant) {
            self.queue.remove(pos);
            let t = self.tenant_mut(tenant)?;
            t.queued = false;
            let span = std::mem::replace(&mut t.refresh_span, SpanId::NONE);
            tracer.end_with(span, "evicted while queued".to_string());
        }
        // Drain an in-flight rebuild: wait for the worker, discard the
        // result (the binding it would swap is being torn down), and
        // commit everyone else's completions as usual.
        while self.tenant(tenant)?.inflight.is_some() {
            let Some(worker) = &self.worker else { break };
            let Some(done) = worker.wait_done() else {
                break;
            };
            if done.tenant == tenant {
                self.inflight = self.inflight.saturating_sub(1);
                // Even a grant we are about to discard must leave the
                // pool whole if its worker died producing it.
                if done.panicked {
                    self.metrics.worker_restarts.inc();
                    if let Some(w) = &mut self.worker {
                        w.respawn_one();
                    }
                }
                let t = self.tenant_mut(tenant)?;
                t.inflight = None;
                t.refreshing = false;
                let span = std::mem::replace(&mut t.refresh_span, SpanId::NONE);
                tracer.event("evict-drain", span, Some(tenant.0), String::new());
                tracer.end_with(span, "grant drained by eviction".to_string());
            } else {
                self.commit(done)?;
            }
        }
        self.launch_ready()?;
        self.evict_now(tenant)
    }

    /// The teardown half of an eviction; assumes the tenant is
    /// quiescent (no queue slot, no in-flight rebuild, no pending
    /// queries).
    fn evict_now(&mut self, tenant: TenantId) -> SparseResult<TenantStats> {
        let matrix = self.tenant(tenant)?.matrix;
        let head = self.engine.binding_fingerprint(matrix);
        self.engine.deregister(matrix)?;
        // Catalog sweep: drop the tenant's version chain, sparing
        // revisions other live bindings still reach.
        if let Some(head) = head {
            let live = self.engine.bound_fingerprints();
            if let Some(catalog) = self.engine.catalog_mut() {
                catalog.remove_chain(head, &live)?;
            }
        }
        let t = self
            .tenants
            .remove(&tenant.0)
            .expect("tenant validated above");
        self.order.retain(|&x| x != tenant);
        self.metrics.evictions.inc();
        let stats = t.stats_view();
        // The tenant's metric names leave the registry with it; the
        // hub-wide sums keep its contributions. (The handles in
        // `stats` above already folded their final values.)
        self.engine
            .telemetry()
            .registry
            .remove_prefix(&format!("hub.tenant.{}.", tenant.0));
        Ok(stats)
    }

    /// Final stats of tenants the idle policy evicted, in eviction
    /// order (an explicit [`evict`](Self::evict) returns them to the
    /// caller instead of retiring them here).
    pub fn retired(&self) -> &[(TenantId, TenantStats)] {
        &self.retired
    }

    /// Blocks until every queued and in-flight rebuild has committed.
    /// Returns the number of swaps committed.
    pub fn wait_refreshes(&mut self) -> SparseResult<usize> {
        let mut committed = 0;
        while self.inflight > 0 || !self.queue.is_empty() {
            self.launch_ready()?;
            let Some(worker) = &self.worker else { break };
            let Some(done) = worker.wait_done() else {
                break;
            };
            if self.commit(done)? {
                committed += 1;
            }
            self.launch_ready()?;
        }
        Ok(committed)
    }

    /// Blocks until the next rebuild commits (launching queued work
    /// first if the pool is idle); `None` when nothing is pending.
    /// Returns the tenant whose swap committed — the fairness probe.
    pub fn wait_next_refresh(&mut self) -> SparseResult<Option<TenantId>> {
        self.launch_ready()?;
        if self.inflight == 0 {
            return Ok(None);
        }
        let Some(worker) = &self.worker else {
            return Ok(None);
        };
        let Some(done) = worker.wait_done() else {
            return Ok(None);
        };
        let tenant = done.tenant;
        self.commit(done)?;
        self.launch_ready()?;
        Ok(Some(tenant))
    }

    /// Commits one finished rebuild: swap the binding, splice the delta
    /// accumulated during the rebuild onto the new overlay, re-check the
    /// budget. Returns `true` for a committed swap. A failure — worker
    /// decompose error or engine commit rejection — restores the
    /// tenant (captured delta folded back, old binding keeps serving),
    /// counts into `refresh_failures`, and returns `Ok(false)`: it must
    /// not surface as an error from whichever unrelated call polled.
    fn commit(&mut self, done: crate::worker::RefreshDone) -> SparseResult<bool> {
        self.inflight = self.inflight.saturating_sub(1);
        if done.panicked {
            return self.supervise_panic(done);
        }
        let tenant = done.tenant;
        let tracer = self.engine.telemetry().tracer.clone();
        let swapped = match done.result {
            Ok(d) => self
                .engine
                .commit_refresh(&done.ticket, &done.merged, Some(Arc::new(d)))
                .ok(),
            Err(_) => None,
        };
        // A completion can outlive its tenant (evicted mid-drain in a
        // degraded worker state); dropping it is the only sound move.
        if !self.tenants.contains_key(&tenant.0) {
            return Ok(false);
        }
        match swapped {
            Some(new_id) => {
                let adaptive = self.config.adaptive;
                if let Some(outcome) = &done.outcome {
                    self.metrics.splice.record(outcome);
                    self.record_refresh_phases(outcome);
                }
                self.metrics.refreshes_completed.inc();
                let t = self
                    .tenants
                    .get_mut(&tenant.0)
                    .ok_or_else(|| SparseError::InvalidCsr(format!("{tenant} is not admitted")))?;
                t.matrix = new_id;
                t.base = done.merged;
                let finished = t.inflight.take();
                t.refreshing = false;
                t.retries = 0;
                t.metrics.refreshes.inc();
                t.rerank_mark = 0;
                // Splice: the updates that arrived during the rebuild are
                // exactly the live delta; they become the new overlay.
                t.overlay_dirty = true;
                if let Some(outcome) = &done.outcome {
                    t.metrics.splice.record(outcome);
                    tracer.event(
                        if outcome.incremental {
                            "splice"
                        } else {
                            "fallback"
                        },
                        t.refresh_span,
                        Some(tenant.0),
                        format!(
                            "affected={} total={}",
                            outcome.affected_vertices, outcome.total_vertices
                        ),
                    );
                }
                let span = std::mem::replace(&mut t.refresh_span, SpanId::NONE);
                tracer.end_with(
                    span,
                    format!("committed, decompose took {:.3e}s", done.decompose_seconds),
                );
                if let (Some(policy), Some(f)) = (adaptive, finished) {
                    let nnz =
                        policy.retune(&mut t.budget, done.decompose_seconds, f.per_entry_seconds);
                    t.adaptive_budget_nnz = nnz as u64;
                }
                // The budget may have tripped again mid-rebuild; honour
                // it now that the slot is free.
                let needs = {
                    let t = self.tenant(tenant)?;
                    t.needs_refresh()
                };
                if needs && self.config.auto_refresh {
                    self.request_refresh(tenant)?;
                }
                Ok(true)
            }
            None => {
                // The old binding never stopped serving; fold the
                // captured delta back into the live one and carry on.
                let t = self.tenant_mut(tenant)?;
                if let Some(f) = t.inflight.take() {
                    for (r, c, v) in f.captured.iter() {
                        t.delta.add(r, c, v)?;
                    }
                }
                t.refreshing = false;
                t.metrics.refresh_failures.inc();
                t.rerank_mark = 0;
                t.overlay_dirty = true;
                let span = std::mem::replace(&mut t.refresh_span, SpanId::NONE);
                tracer.end_with(span, "failed, captured delta restored".to_string());
                self.metrics.refresh_failures.inc();
                Ok(false)
            }
        }
    }

    /// Supervision: a worker thread died running this grant. Respawn a
    /// replacement (the pool must never shrink), restore the captured
    /// delta so serving stays bit-exact, and either requeue the grant
    /// with exponential backoff or — past
    /// [`max_refresh_retries`](HubConfig::max_refresh_retries) —
    /// compact synchronously so the tenant still converges.
    fn supervise_panic(&mut self, done: crate::worker::RefreshDone) -> SparseResult<bool> {
        let tenant = done.tenant;
        let tracer = self.engine.telemetry().tracer.clone();
        // Respawn FIRST: even when the tenant is gone, the pool must be
        // made whole before anything can wait on it again.
        self.metrics.worker_restarts.inc();
        if let Some(w) = &mut self.worker {
            w.respawn_one();
        }
        if !self.tenants.contains_key(&tenant.0) {
            return Ok(false);
        }
        let msg = match &done.result {
            Err(e) => e.to_string(),
            Ok(_) => "worker panicked".to_string(),
        };
        let retries = {
            let t = self.tenant_mut(tenant)?;
            if let Some(f) = t.inflight.take() {
                for (r, c, v) in f.captured.iter() {
                    t.delta.add(r, c, v)?;
                }
            }
            t.refreshing = false;
            t.overlay_dirty = true;
            t.rerank_mark = 0;
            t.retries += 1;
            tracer.event("worker-panic", t.refresh_span, Some(tenant.0), msg);
            t.retries
        };
        if retries <= self.config.max_refresh_retries {
            self.metrics.refresh_retries.inc();
            let backoff = self
                .config
                .retry_backoff
                .saturating_mul(2u32.saturating_pow((retries - 1).min(16)));
            let t = self.tenant_mut(tenant)?;
            t.backoff = (!backoff.is_zero()).then_some(backoff);
            t.queued = true;
            tracer.event(
                "requeue",
                t.refresh_span,
                Some(tenant.0),
                format!("retry {retries} backoff={backoff:?}"),
            );
            self.queue.push_back(tenant);
            Ok(false)
        } else {
            // The pool keeps dying on this grant; give up on async and
            // compact inline. sync_refresh closes the refresh span.
            self.metrics.sync_fallbacks.inc();
            {
                let t = self.tenant_mut(tenant)?;
                t.retries = 0;
                tracer.event(
                    "sync-fallback",
                    t.refresh_span,
                    Some(tenant.0),
                    format!("after {} worker deaths", retries),
                );
            }
            self.sync_refresh(tenant)?;
            Ok(true)
        }
    }

    /// Pushes a tenant's pending correction into the engine as an
    /// overlay (no-op when already in sync).
    fn sync_overlay(&mut self, tenant: TenantId) -> SparseResult<()> {
        let (matrix, overlay) = {
            let t = self.tenant(tenant)?;
            if !t.overlay_dirty {
                return Ok(());
            }
            (t.matrix, t.overlay_csr()?)
        };
        self.engine.set_delta(matrix, overlay)?;
        self.tenant_mut(tenant)?.overlay_dirty = false;
        Ok(())
    }

    /// Enqueues a multiply query against a tenant's served matrix;
    /// answers arrive from [`flush`](Self::flush).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        x: Vec<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<QueryId> {
        self.touch(tenant);
        self.poll()?;
        let matrix = self.tenant(tenant)?.matrix;
        let id = self.engine.submit(MultiplyQuery {
            matrix,
            x,
            iters,
            sigma,
        })?;
        self.tenant(tenant)?.metrics.queries.inc();
        self.metrics.queries.inc();
        Ok(id)
    }

    /// Answers every pending query hub-wide, each against its tenant's
    /// served operator `A₀ + ΔA` as of this flush (the flush is the
    /// consistency point). Compatible queries of the *same* tenant
    /// coalesce into one multi-RHS run.
    pub fn flush(&mut self) -> SparseResult<Vec<QueryResponse>> {
        self.poll()?;
        for tenant in self.order.clone() {
            self.sync_overlay(tenant)?;
        }
        self.engine.flush()
    }

    /// [`flush`](Self::flush), by its explicit hub-wide name.
    pub fn flush_all(&mut self) -> SparseResult<Vec<QueryResponse>> {
        self.flush()
    }

    /// Answers only **one tenant's** pending queries, leaving every
    /// other tenant's queue untouched: query ownership is tracked
    /// through the salted binding, so a session can drain itself
    /// without forcing runs (or paying flush latency) for the whole
    /// hub. Batching within the tenant is identical to a hub-wide
    /// flush.
    pub fn flush_tenant(&mut self, tenant: TenantId) -> SparseResult<Vec<QueryResponse>> {
        self.touch(tenant);
        self.poll()?;
        self.tenant(tenant)?;
        self.sync_overlay(tenant)?;
        self.engine.flush_owned(tenant.0 as u128)
    }

    /// Runs one query immediately, bypassing the batcher.
    pub fn run_single(
        &mut self,
        tenant: TenantId,
        x: Vec<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<QueryResponse> {
        self.touch(tenant);
        self.poll()?;
        self.sync_overlay(tenant)?;
        let matrix = self.tenant(tenant)?.matrix;
        self.tenant(tenant)?.metrics.queries.inc();
        self.metrics.queries.inc();
        self.engine.run_single(MultiplyQuery {
            matrix,
            x,
            iters,
            sigma,
        })
    }

    /// Current engine binding of a tenant (changes at every refresh).
    pub fn matrix_id(&self, tenant: TenantId) -> SparseResult<MatrixId> {
        Ok(self.tenant(tenant)?.matrix)
    }

    /// Streaming revision of a tenant's binding (0 cold, +1 per
    /// committed refresh).
    pub fn version(&self, tenant: TenantId) -> SparseResult<u64> {
        let t = self.tenant(tenant)?;
        Ok(self
            .engine
            .matrix_version(t.matrix)
            .expect("a tenant's matrix is always bound"))
    }

    /// The tenant's registered base `A₀` (excludes pending deltas; during
    /// a rebuild this is still the *old* base until the swap commits).
    pub fn base(&self, tenant: TenantId) -> SparseResult<&CsrMatrix<f64>> {
        Ok(&self.tenant(tenant)?.base)
    }

    /// The tenant's live delta accumulator (excludes a rebuild's captured
    /// snapshot).
    pub fn delta(&self, tenant: TenantId) -> SparseResult<&DeltaBuilder<f64>> {
        Ok(&self.tenant(tenant)?.delta)
    }

    /// Distinct positions pending for a tenant, *including* a running
    /// rebuild's captured snapshot (everything not yet in the base).
    pub fn delta_nnz(&self, tenant: TenantId) -> SparseResult<usize> {
        let t = self.tenant(tenant)?;
        Ok(t.delta.len() + t.inflight.as_ref().map_or(0, |f| f.captured.len()))
    }

    /// Absolute mass `Σ |δ|` of the tenant's live delta.
    pub fn delta_mass(&self, tenant: TenantId) -> SparseResult<f64> {
        Ok(self.tenant(tenant)?.delta.mass())
    }

    /// `true` once the tenant's live delta exceeds its budget.
    pub fn needs_refresh(&self, tenant: TenantId) -> SparseResult<bool> {
        Ok(self.tenant(tenant)?.needs_refresh())
    }

    /// The tenant's current staleness budget (as admitted, or as last
    /// re-derived by the [`AdaptiveBudget`] policy).
    pub fn budget(&self, tenant: TenantId) -> SparseResult<StalenessBudget> {
        Ok(self.tenant(tenant)?.budget)
    }

    /// `true` while a rebuild for this tenant is queued or in flight.
    pub fn refresh_pending(&self, tenant: TenantId) -> SparseResult<bool> {
        Ok(self.tenant(tenant)?.refresh_pending())
    }

    /// The algorithm bound for a tenant's current binding.
    pub fn chosen_algorithm(&self, tenant: TenantId) -> SparseResult<&str> {
        let t = self.tenant(tenant)?;
        Ok(self
            .engine
            .chosen_algorithm(t.matrix)
            .expect("a tenant's matrix is always bound"))
    }

    /// The planner's current ranking for a tenant (re-computed at every
    /// refresh).
    pub fn plan_report(&self, tenant: TenantId) -> SparseResult<&[amd_engine::Prediction]> {
        let t = self.tenant(tenant)?;
        Ok(self
            .engine
            .plan_report(t.matrix)
            .expect("a tenant's matrix is always bound"))
    }

    /// Per-tenant counters, folded from the registry (plus the
    /// tenant's live refresh state).
    pub fn tenant_stats(&self, tenant: TenantId) -> SparseResult<TenantStats> {
        Ok(self.tenant(tenant)?.stats_view())
    }

    /// Hub-wide counters (sums of the per-tenant ones), folded from
    /// the registry.
    pub fn stats(&self) -> HubStats {
        HubStats {
            updates: self.metrics.updates.get(),
            queries: self.metrics.queries.get(),
            refreshes_started: self.metrics.refreshes_started.get(),
            refreshes_completed: self.metrics.refreshes_completed.get(),
            refresh_failures: self.metrics.refresh_failures.get(),
            early_rebinds: self.metrics.early_rebinds.get(),
            suppressed_triggers: self.metrics.suppressed_triggers.get(),
            splice: self.metrics.splice.stats(),
            evictions: self.metrics.evictions.get(),
            idle_evictions: self.metrics.idle_evictions.get(),
            worker_restarts: self.metrics.worker_restarts.get(),
            refresh_retries: self.metrics.refresh_retries.get(),
            sync_fallbacks: self.metrics.sync_fallbacks.get(),
        }
    }

    /// The wrapped engine's serving counters.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The wrapped engine's decomposition-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// The persistence catalog behind the engine's cache, when the hub
    /// was configured with a spill directory.
    pub fn catalog(&self) -> Option<&arrow_core::Catalog> {
        self.engine.catalog()
    }

    /// Mutable access to the persistence catalog (GC sweeps between
    /// serving bursts).
    pub fn catalog_mut(&mut self) -> Option<&mut arrow_core::Catalog> {
        self.engine.catalog_mut()
    }
}

/// A lightweight per-tenant handle borrowing the hub: the same
/// operations as the [`StreamHub`] tenant methods without repeating the
/// [`TenantId`]. Create one per interaction via
/// [`StreamHub::session`]; it is `repr`-free and costs nothing.
pub struct Session<'a> {
    hub: &'a mut StreamHub,
    tenant: TenantId,
}

impl Session<'_> {
    /// The tenant this session addresses.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// See [`StreamHub::update`].
    pub fn update(&mut self, update: Update) -> SparseResult<bool> {
        self.hub.update(self.tenant, update)
    }

    /// See [`StreamHub::submit`].
    pub fn submit(
        &mut self,
        x: Vec<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<QueryId> {
        self.hub.submit(self.tenant, x, iters, sigma)
    }

    /// See [`StreamHub::flush_tenant`]: drains **this tenant's**
    /// pending queries only. Other tenants' queries stay queued for
    /// their own flush (or a hub-wide [`flush_all`](Self::flush_all)).
    pub fn flush(&mut self) -> SparseResult<Vec<QueryResponse>> {
        self.hub.flush_tenant(self.tenant)
    }

    /// See [`StreamHub::flush_all`] (hub-wide: answers include other
    /// tenants' pending queries).
    pub fn flush_all(&mut self) -> SparseResult<Vec<QueryResponse>> {
        self.hub.flush_all()
    }

    /// See [`StreamHub::run_single`].
    pub fn run_single(
        &mut self,
        x: Vec<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<QueryResponse> {
        self.hub.run_single(self.tenant, x, iters, sigma)
    }

    /// See [`StreamHub::refresh`].
    pub fn refresh(&mut self) -> SparseResult<bool> {
        self.hub.refresh(self.tenant)
    }

    /// See [`StreamHub::needs_refresh`].
    pub fn needs_refresh(&self) -> bool {
        self.hub
            .needs_refresh(self.tenant)
            .expect("session tenant is admitted")
    }

    /// See [`StreamHub::version`].
    pub fn version(&self) -> u64 {
        self.hub
            .version(self.tenant)
            .expect("session tenant is admitted")
    }

    /// See [`StreamHub::delta_nnz`].
    pub fn delta_nnz(&self) -> usize {
        self.hub
            .delta_nnz(self.tenant)
            .expect("session tenant is admitted")
    }

    /// See [`StreamHub::tenant_stats`].
    pub fn stats(&self) -> TenantStats {
        self.hub
            .tenant_stats(self.tenant)
            .expect("session tenant is admitted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;
    use amd_sparse::DenseMatrix;
    use amd_spmm::reference::iterated_spmm;

    fn ring(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    fn config(cap: usize) -> HubConfig {
        HubConfig {
            engine: EngineConfig {
                arrow_width: 8,
                target_ranks: 4,
                ..EngineConfig::default()
            },
            budget: StalenessBudget::nnz_cap(cap),
            ..HubConfig::default()
        }
    }

    fn column(n: u32, salt: u32) -> Vec<f64> {
        (0..n)
            .map(|r| (((salt + 3 * r) % 9) as f64) - 4.0)
            .collect()
    }

    #[test]
    fn tenants_with_identical_content_stay_isolated() {
        let n = 36;
        let mut hub = StreamHub::new(config(100)).unwrap();
        let a = hub.admit(ring(n)).unwrap();
        let b = hub.admit(ring(n)).unwrap();
        assert_ne!(
            hub.matrix_id(a).unwrap(),
            hub.matrix_id(b).unwrap(),
            "identical content must get per-tenant bindings"
        );
        // The expensive decompose is still shared by content.
        assert_eq!(hub.cache_stats().decompositions, 1);
        // Mutate tenant a only.
        for u in (Update::Add {
            row: 0,
            col: 18,
            delta: 3.0,
        })
        .sym_pair()
        {
            hub.update(a, u).unwrap();
        }
        let x = column(n, 1);
        let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
        let got_a = hub.run_single(a, x.clone(), 2, None).unwrap();
        let got_b = hub.run_single(b, x, 2, None).unwrap();
        let merged =
            ops::apply_delta(hub.base(a).unwrap(), &hub.delta(a).unwrap().to_csr()).unwrap();
        assert_eq!(got_a.y, iterated_spmm(&merged, &xm, 2).unwrap().data());
        assert_eq!(
            got_b.y,
            iterated_spmm(&ring(n), &xm, 2).unwrap().data(),
            "tenant b must not see tenant a's delta"
        );
    }

    #[test]
    fn hub_flush_batches_across_tenants() {
        let n = 32;
        let mut hub = StreamHub::new(config(100)).unwrap();
        let a = hub.admit(ring(n)).unwrap();
        let b = hub.admit(basic::star(n).to_adjacency()).unwrap();
        hub.submit(a, column(n, 0), 1, None).unwrap();
        hub.submit(a, column(n, 1), 1, None).unwrap();
        hub.submit(b, column(n, 2), 1, None).unwrap();
        let responses = hub.flush().unwrap();
        assert_eq!(responses.len(), 3);
        // Same-tenant queries coalesce; tenants never share a run.
        assert_eq!(hub.engine_stats().runs, 2);
        assert_eq!(hub.stats().queries, 3);
    }

    #[test]
    fn async_refresh_serves_while_rebuilding_and_swaps_exactly() {
        let n = 40;
        let mut cfg = config(4);
        cfg.decompose_delay = Some(Duration::from_millis(60));
        let mut hub = StreamHub::new(cfg).unwrap();
        let t = hub.admit(ring(n)).unwrap();
        let mut truth = ring(n);
        let mut tripped = false;
        for i in 0..8u32 {
            let (u, v) = (i, (i + n / 2) % n);
            let mut patch = amd_sparse::CooMatrix::new(n, n);
            patch.push(u, v, 1.0).unwrap();
            truth = ops::apply_delta(&truth, &patch.to_csr()).unwrap();
            tripped |= hub
                .update(
                    t,
                    Update::Add {
                        row: u,
                        col: v,
                        delta: 1.0,
                    },
                )
                .unwrap();
            if tripped {
                break;
            }
        }
        assert!(tripped);
        assert!(hub.refresh_pending(t).unwrap(), "rebuild launched");
        assert_eq!(hub.version(t).unwrap(), 0, "swap has not committed yet");
        // Serving during the rebuild: exact, through the overlay.
        let x = column(n, 2);
        let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
        let got = hub.run_single(t, x, 2, None).unwrap();
        assert_eq!(got.y, iterated_spmm(&truth, &xm, 2).unwrap().data());
        assert!(hub.engine_stats().corrected_runs >= 1);
        // Commit the swap.
        assert_eq!(hub.wait_refreshes().unwrap(), 1);
        assert_eq!(hub.version(t).unwrap(), 1);
        assert_eq!(hub.delta_nnz(t).unwrap(), 0);
        assert_eq!(hub.tenant_stats(t).unwrap().refreshes, 1);
        // Post-swap serving is exact on the fresh binding.
        let x = column(n, 3);
        let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
        let got = hub.run_single(t, x, 1, None).unwrap();
        assert_eq!(got.y, iterated_spmm(&truth, &xm, 1).unwrap().data());
    }

    #[test]
    fn inflight_refresh_suppresses_double_trigger_and_requeues() {
        let n = 36;
        let mut cfg = config(2);
        cfg.decompose_delay = Some(Duration::from_millis(80));
        let mut hub = StreamHub::new(cfg).unwrap();
        let t = hub.admit(ring(n)).unwrap();
        let mut truth = ring(n);
        let apply = |hub: &mut StreamHub, truth: &mut CsrMatrix<f64>, u: u32, v: u32| {
            let mut patch = amd_sparse::CooMatrix::new(n, n);
            patch.push(u, v, 1.0).unwrap();
            *truth = ops::apply_delta(truth, &patch.to_csr()).unwrap();
            hub.update(
                t,
                Update::Add {
                    row: u,
                    col: v,
                    delta: 1.0,
                },
            )
            .unwrap();
        };
        // Trip once: rebuild launches and captures the first 3 entries.
        for i in 0..3 {
            apply(&mut hub, &mut truth, i, i + 10);
        }
        assert!(hub.tenant_stats(t).unwrap().refreshing);
        // Trip again mid-rebuild: guarded, not double-launched.
        for i in 0..3 {
            apply(&mut hub, &mut truth, i, i + 20);
        }
        let stats = hub.tenant_stats(t).unwrap();
        assert!(stats.suppressed_triggers >= 1, "mid-rebuild trip guarded");
        assert_eq!(hub.stats().refreshes_started, 1, "single launch");
        // Serving stays exact across base + captured + live layers.
        let x = column(n, 5);
        let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
        let got = hub.run_single(t, x, 2, None).unwrap();
        assert_eq!(got.y, iterated_spmm(&truth, &xm, 2).unwrap().data());
        // The commit honours the re-trip: a second rebuild runs.
        hub.wait_refreshes().unwrap();
        assert_eq!(hub.stats().refreshes_completed, 2);
        assert_eq!(hub.version(t).unwrap(), 2);
        assert_eq!(hub.delta_nnz(t).unwrap(), 0);
        let x = column(n, 6);
        let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
        let got = hub.run_single(t, x, 1, None).unwrap();
        assert_eq!(got.y, iterated_spmm(&truth, &xm, 1).unwrap().data());
    }

    #[test]
    fn fifo_fairness_grants_in_trip_order() {
        let n = 32;
        let mut hub = StreamHub::new(config(1)).unwrap();
        let tenants: Vec<TenantId> = (0..3).map(|_| hub.admit(ring(n)).unwrap()).collect();
        // Trip budgets in reverse admission order.
        for &t in tenants.iter().rev() {
            for i in 0..2u32 {
                hub.update(
                    t,
                    Update::Add {
                        row: i,
                        col: i + 9,
                        delta: 1.0,
                    },
                )
                .unwrap();
            }
        }
        while hub.wait_next_refresh().unwrap().is_some() {}
        // Grant slots record the launch order: FIFO in trip order
        // (reverse admission here), every tenant within 3 slots.
        let slots: Vec<u64> = tenants
            .iter()
            .rev()
            .map(|&t| hub.tenant_stats(t).unwrap().last_granted_slot)
            .collect();
        assert_eq!(slots, vec![1, 2, 3], "FIFO in budget-trip order");
        for &t in &tenants {
            assert_eq!(hub.tenant_stats(t).unwrap().refreshes, 1);
        }
        assert_eq!(hub.stats().refreshes_completed, 3);
    }

    #[test]
    fn per_tenant_counters_sum_to_hub_counters() {
        let n = 30;
        let mut hub = StreamHub::new(config(2)).unwrap();
        let a = hub.admit(ring(n)).unwrap();
        let b = hub.admit(basic::star(n).to_adjacency()).unwrap();
        for i in 0..5u32 {
            hub.update(
                a,
                Update::Add {
                    row: i,
                    col: i + 11,
                    delta: 1.0,
                },
            )
            .unwrap();
            hub.update(
                b,
                Update::Add {
                    row: i,
                    col: i + 7,
                    delta: 2.0,
                },
            )
            .unwrap();
        }
        hub.submit(a, column(n, 0), 1, None).unwrap();
        hub.submit(b, column(n, 1), 1, None).unwrap();
        hub.flush().unwrap();
        hub.wait_refreshes().unwrap();
        let (sa, sb) = (
            hub.tenant_stats(a).unwrap().clone(),
            hub.tenant_stats(b).unwrap().clone(),
        );
        let hs = hub.stats();
        assert_eq!(sa.updates + sb.updates, hs.updates);
        assert_eq!(sa.queries + sb.queries, hs.queries);
        assert_eq!(sa.refreshes + sb.refreshes, hs.refreshes_completed);
        assert_eq!(sa.early_rebinds + sb.early_rebinds, hs.early_rebinds);
        assert_eq!(
            sa.suppressed_triggers + sb.suppressed_triggers,
            hs.suppressed_triggers
        );
        assert_eq!(
            sa.refresh_failures + sb.refresh_failures,
            hs.refresh_failures
        );
    }

    #[test]
    fn rerank_policy_rebinds_early() {
        let n = 40;
        let mut cfg = config(usize::MAX); // budget never trips
        cfg.budget = StalenessBudget::default();
        cfg.rerank = ReRankPolicy::at_density(0.05);
        cfg.async_refresh = false; // deterministic: rebind inline
        let mut hub = StreamHub::new(cfg).unwrap();
        let t = hub.admit(ring(n)).unwrap();
        let mut rebound = false;
        for i in 0..20u32 {
            rebound |= hub
                .update(
                    t,
                    Update::Add {
                        row: i,
                        col: (i + 13) % n,
                        delta: 1.0,
                    },
                )
                .unwrap();
            if rebound {
                break;
            }
        }
        assert!(rebound, "density 5% must trigger the re-rank hook");
        assert!(hub.tenant_stats(t).unwrap().early_rebinds >= 1);
        assert_eq!(hub.stats().refreshes_completed, 1, "rebound early");
        assert_eq!(hub.version(t).unwrap(), 1);
        assert!(!hub.needs_refresh(t).unwrap());
    }

    #[test]
    fn session_handle_round_trip() {
        let n = 28;
        let mut hub = StreamHub::new(config(3)).unwrap();
        let t = hub.admit(ring(n)).unwrap();
        let mut s = hub.session(t).unwrap();
        assert_eq!(s.tenant(), t);
        assert_eq!(s.version(), 0);
        s.update(Update::Add {
            row: 0,
            col: 14,
            delta: 2.0,
        })
        .unwrap();
        assert_eq!(s.delta_nnz(), 1);
        assert_eq!(s.stats().updates, 1);
        s.submit(vec![1.0; n as usize], 1, None).unwrap();
        let responses = s.flush().unwrap();
        assert_eq!(responses.len(), 1);
        assert!(!s.needs_refresh());
        assert!(s.refresh().unwrap());
        hub.wait_refreshes().unwrap();
        assert_eq!(hub.version(t).unwrap(), 1);
        assert!(hub.session(TenantId(99)).is_err());
    }

    #[test]
    fn unknown_tenant_rejected_everywhere() {
        let mut hub = StreamHub::new(config(4)).unwrap();
        let ghost = TenantId(7);
        assert!(hub
            .update(
                ghost,
                Update::Add {
                    row: 0,
                    col: 0,
                    delta: 1.0
                }
            )
            .is_err());
        assert!(hub.submit(ghost, vec![1.0], 1, None).is_err());
        assert!(hub.refresh(ghost).is_err());
        assert!(hub.version(ghost).is_err());
        assert!(hub.tenant_stats(ghost).is_err());
    }

    #[test]
    fn non_square_admission_rejected() {
        let mut hub = StreamHub::new(config(4)).unwrap();
        assert!(hub.admit(CsrMatrix::zeros(3, 4)).is_err());
    }

    #[test]
    fn per_tenant_flush_leaves_other_queues_untouched() {
        let n = 30;
        let mut hub = StreamHub::new(config(100)).unwrap();
        let a = hub.admit(ring(n)).unwrap();
        let b = hub.admit(basic::star(n).to_adjacency()).unwrap();
        hub.submit(a, column(n, 0), 1, None).unwrap();
        hub.submit(b, column(n, 1), 1, None).unwrap();
        hub.submit(a, column(n, 2), 1, None).unwrap();
        // Session flush drains only its own tenant.
        let mine = hub.session(a).unwrap().flush().unwrap();
        assert_eq!(mine.len(), 2, "tenant a's two queries");
        assert_eq!(hub.engine_stats().runs, 1, "a's queries share one run");
        // Tenant b's query is still queued and still answerable.
        let rest = hub.flush_all().unwrap();
        assert_eq!(rest.len(), 1);
        let xm = DenseMatrix::from_vec(n, 1, column(n, 1)).unwrap();
        let want = iterated_spmm(&basic::star(n).to_adjacency(), &xm, 1).unwrap();
        assert_eq!(rest[0].y, want.data());
    }

    #[test]
    fn evict_removes_tenant_and_reports_final_stats() {
        let n = 30;
        let mut hub = StreamHub::new(config(100)).unwrap();
        let a = hub.admit(ring(n)).unwrap();
        let b = hub.admit(ring(n)).unwrap();
        hub.update(
            a,
            Update::Add {
                row: 0,
                col: 9,
                delta: 1.0,
            },
        )
        .unwrap();
        let stats = hub.evict(a).unwrap();
        assert_eq!(stats.updates, 1, "final counters returned");
        assert_eq!(hub.stats().evictions, 1);
        assert_eq!(hub.tenants(), &[b], "admission order keeps only b");
        assert!(hub
            .update(
                a,
                Update::Add {
                    row: 0,
                    col: 1,
                    delta: 1.0
                }
            )
            .is_err());
        assert!(hub.evict(a).is_err(), "double eviction rejected");
        // The surviving tenant (identical content!) still serves.
        let x = column(n, 3);
        let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
        let got = hub.run_single(b, x, 2, None).unwrap();
        assert_eq!(got.y, iterated_spmm(&ring(n), &xm, 2).unwrap().data());
    }

    #[test]
    fn evict_refuses_while_queries_pend() {
        let n = 24;
        let mut hub = StreamHub::new(config(100)).unwrap();
        let t = hub.admit(ring(n)).unwrap();
        hub.submit(t, column(n, 0), 1, None).unwrap();
        let err = hub.evict(t).unwrap_err();
        assert!(err.to_string().contains("pending"), "{err}");
        hub.flush_tenant(t).unwrap();
        hub.evict(t).unwrap();
    }

    #[test]
    fn evict_drains_an_inflight_refresh_grant() {
        let n = 36;
        let mut cfg = config(2);
        cfg.decompose_delay = Some(Duration::from_millis(60));
        let mut hub = StreamHub::new(cfg).unwrap();
        let t = hub.admit(ring(n)).unwrap();
        let u = hub.admit(basic::star(n).to_adjacency()).unwrap();
        for i in 0..3u32 {
            hub.update(
                t,
                Update::Add {
                    row: i,
                    col: i + 10,
                    delta: 1.0,
                },
            )
            .unwrap();
        }
        assert!(hub.tenant_stats(t).unwrap().refreshing, "rebuild in flight");
        let stats = hub.evict(t).unwrap();
        assert!(!stats.refreshing, "grant drained, not committed");
        assert_eq!(stats.refreshes, 0, "the drained rebuild never swapped");
        assert_eq!(
            hub.stats().refreshes_completed,
            0,
            "no swap landed for the evicted tenant"
        );
        // The freed slot still serves the survivor.
        for i in 0..3u32 {
            hub.update(
                u,
                Update::Add {
                    row: i,
                    col: i + 7,
                    delta: 1.0,
                },
            )
            .unwrap();
        }
        hub.wait_refreshes().unwrap();
        assert_eq!(hub.version(u).unwrap(), 1);
    }

    #[test]
    fn idle_policy_evicts_quiet_tenants() {
        let n = 24;
        let mut cfg = config(100);
        cfg.max_idle_polls = Some(3);
        let mut hub = StreamHub::new(cfg).unwrap();
        let quiet = hub.admit(ring(n)).unwrap();
        let dirty = hub.admit(ring(n)).unwrap();
        let busy = hub.admit(basic::star(n).to_adjacency()).unwrap();
        // One tenant holds un-compacted updates below its budget, then
        // goes quiet too: it must NOT be idle-evicted (that would
        // silently discard acknowledged mutations).
        hub.update(
            dirty,
            Update::Add {
                row: 0,
                col: 9,
                delta: 2.0,
            },
        )
        .unwrap();
        // Keep one tenant busy; the others go quiet.
        for i in 0..8u32 {
            hub.update(
                busy,
                Update::Add {
                    row: i,
                    col: i + 5,
                    delta: 1.0,
                },
            )
            .unwrap();
        }
        assert_eq!(hub.stats().idle_evictions, 1);
        assert_eq!(hub.stats().evictions, 1);
        let retired = hub.retired();
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].0, quiet);
        assert_eq!(hub.tenants(), &[dirty, busy]);
        // The dirty tenant's pending delta survived in full.
        assert_eq!(hub.delta_nnz(dirty).unwrap(), 1);
        // The busy tenant was touched every round and survives.
        assert!(hub.version(busy).is_ok());
    }
}
