//! The update vocabulary of the streaming layer.

/// One mutation of a served matrix entry.
///
/// Updates address single entries; symmetric edge mutations (the common
/// case for adjacency matrices) are two updates — see
/// [`Update::sym_pair`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Update {
    /// Adds `delta` to the entry at `(row, col)` (which may be a
    /// structural zero — the entry is created).
    Add {
        /// Row of the target entry.
        row: u32,
        /// Column of the target entry.
        col: u32,
        /// Additive change.
        delta: f64,
    },
    /// Sets the entry at `(row, col)` to `value` (use `0.0` to remove an
    /// edge; the structure shrinks at the next refresh).
    Set {
        /// Row of the target entry.
        row: u32,
        /// Column of the target entry.
        col: u32,
        /// New absolute value.
        value: f64,
    },
}

impl Update {
    /// The target position of the update.
    pub fn position(&self) -> (u32, u32) {
        match *self {
            Update::Add { row, col, .. } | Update::Set { row, col, .. } => (row, col),
        }
    }

    /// The additive change this update makes given the currently served
    /// value at its position (base plus pending delta). This is the single
    /// definition of `Set` semantics shared by every streaming holder:
    /// `Set` becomes the difference to the served value, `Add` is itself.
    pub fn additive(&self, current: f64) -> f64 {
        match *self {
            Update::Add { delta, .. } => delta,
            Update::Set { value, .. } => value - current,
        }
    }

    /// The symmetric pair `{(u, v), (v, u)}` for an undirected edge
    /// mutation. For `u == v`, both elements address the same diagonal
    /// entry — apply only one of them.
    pub fn sym_pair(self) -> [Update; 2] {
        match self {
            Update::Add { row, col, delta } => [
                Update::Add { row, col, delta },
                Update::Add {
                    row: col,
                    col: row,
                    delta,
                },
            ],
            Update::Set { row, col, value } => [
                Update::Set { row, col, value },
                Update::Set {
                    row: col,
                    col: row,
                    value,
                },
            ],
        }
    }
}
