//! # amd-stream — streaming updates for served arrow decompositions
//!
//! The paper's workload shape is decompose-once, multiply-many; the
//! serving engine (`amd-engine`) hardcodes that assumption — any change
//! to the matrix means a cold LA-Decompose. This crate absorbs
//! edge/weight updates **between** queries without paying full
//! re-decomposition on every change. A served matrix becomes
//!
//! ```text
//! A  =  A₀ (decomposed base)  +  ΔA (sparse coalescing delta)
//! ```
//!
//! * multiplies are answered as arrow-SpMM on `A₀` plus a per-iteration
//!   delta correction (see [`amd_spmm::DeltaSpmm`]) — exact under the
//!   subsystem's fixed reduction order,
//! * value-only updates to stored entries can bypass the delta entirely
//!   and patch the decomposition in place
//!   ([`arrow_core::ArrowDecomposition::patch_values`]),
//! * delta size/mass is tracked against a configurable
//!   [`StalenessBudget`]; when it trips, a background-style **refresh**
//!   compacts `ΔA` into `A₀`, re-runs LA-Decompose, bumps the version,
//!   re-ranks the planner, and writes through to the persist layer.
//!
//! Three entry points:
//!
//! * [`DynamicMatrix`] — the self-contained kernel object (base +
//!   decomposition + delta), sequential corrected multiply, catalog
//!   version-chain persistence with point-in-time
//!   [`restore_at`](DynamicMatrix::restore_at), and a measured-signal
//!   adaptive budget. Use it for library/batch workloads.
//! * [`StreamHub`] — the multi-tenant serving hub around
//!   [`amd_engine::Engine`]: many mutating matrices behind one engine,
//!   per-tenant budgets and [`Session`] handles, **double-buffered
//!   background refresh** (a worker thread decomposes the merged
//!   snapshot while the old binding + delta overlay keeps serving; the
//!   swap commits at the next poll point), FIFO fairness under a shared
//!   refresh budget, delta-aware early rebinds, and the full tenant
//!   **lifecycle**: per-tenant flush, [`evict`](StreamHub::evict) with
//!   catalog garbage collection, and idle eviction. Use it to serve
//!   traffic.
//! * [`StreamingEngine`] — the original single-tenant API, kept as a
//!   thin wrapper over a one-tenant hub with synchronous refresh.
//!
//! ```
//! use amd_graph::generators::basic;
//! use amd_sparse::CsrMatrix;
//! use amd_stream::{StalenessBudget, StreamingConfig, StreamingEngine, Update};
//!
//! let a: CsrMatrix<f64> = basic::cycle(64).to_adjacency();
//! let mut s = StreamingEngine::new(
//!     a,
//!     StreamingConfig::with_budget(StalenessBudget::nnz_cap(8)),
//! ).unwrap();
//! // Mutate the graph between queries: add a chord.
//! for u in (Update::Add { row: 0, col: 32, delta: 1.0 }).sym_pair() {
//!     s.update(u).unwrap();
//! }
//! // Queries keep flowing — served as A₀ + ΔA, zero re-decompositions.
//! s.submit(vec![1.0; 64], 2, None).unwrap();
//! let answers = s.flush().unwrap();
//! assert_eq!(answers.len(), 1);
//! assert_eq!(s.cache_stats().decompositions, 1);
//! assert_eq!(s.engine_stats().corrected_runs, 1);
//! ```

pub mod budget;
pub mod dynamic;
pub mod hub;
pub mod session;
pub mod splice;
pub mod update;
mod worker;

pub use budget::{AdaptiveBudget, StalenessBudget};
pub use dynamic::{DynamicConfig, DynamicMatrix, StreamStats};
pub use hub::{
    FairnessPolicy, HubConfig, HubStats, ReRankPolicy, Session, StreamHub, TenantId, TenantStats,
};
pub use session::{StreamingConfig, StreamingEngine};
pub use splice::SpliceStats;
pub use update::Update;

// Incremental-refresh vocabulary (policy + outcome), re-exported so
// holders can configure fallback thresholds without a direct
// `arrow_core` dependency.
pub use arrow_core::incremental::{FallbackReason, IncrementalPolicy, RefreshOutcome};
