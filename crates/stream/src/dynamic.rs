//! A self-contained dynamic matrix: decomposed base, pending delta, and
//! the sequential corrected multiply.
//!
//! [`DynamicMatrix`] is the kernel-level object of the streaming
//! subsystem (the serving-side counterpart is
//! [`StreamingEngine`](crate::StreamingEngine)). It maintains
//!
//! ```text
//! A  =  A₀ (decomposed once)  +  ΔA (coalescing sparse delta)
//! ```
//!
//! and answers `σ(A · X)` iterations without re-decomposing. Updates take
//! one of two routes:
//!
//! * **in-place patch** — a value change to an entry `A₀` already stores
//!   folds directly into the owning decomposition level
//!   ([`ArrowDecomposition::patch_values`]); the delta does not grow at
//!   all, so pure weight-update streams (GNN weight drift, edge
//!   re-weighting) never trip the staleness budget;
//! * **delta accumulation** — structural changes (new entries) join `ΔA`
//!   and are served through the corrected multiply until
//!   [`refresh`](DynamicMatrix::refresh) compacts them into a fresh
//!   base and decomposition.
//!
//! The corrected multiply uses the fixed reduction order of the
//! subsystem: base contribution first (levels in peeling order), then the
//! delta product in row-major ascending-column order, then σ — matching
//! [`amd_spmm::DeltaSpmm`], and bit-equal to a rebuild for exactly
//! representable data.

use crate::budget::{AdaptiveBudget, StalenessBudget};
use crate::splice::{SpliceCounters, SpliceStats};
use crate::update::Update;
use amd_comm::CostModel;
use amd_obs::{Counter, Gauge, Histogram, SpanId, Stopwatch, Telemetry};
use amd_sparse::{
    ops, spmm, CsrMatrix, DeltaBuilder, DenseMatrix, Dtype, SparseError, SparseResult,
};
use amd_spmm::ServingCostGuard;
use arrow_core::catalog::Catalog;
use arrow_core::incremental::{decompose_snapshot_incremental, FallbackReason, IncrementalPolicy};
use arrow_core::{decompose_snapshot, ArrowDecomposition, CompiledDecomposition, DecomposeConfig};
use std::path::PathBuf;

/// Smoothing factor of the measured corrected-multiply EWMA (the
/// adaptive budget's per-entry overhead signal).
const EWMA_ALPHA: f64 = 0.3;

/// Configuration of a [`DynamicMatrix`].
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Decomposition parameters for the base (and every refresh).
    pub decompose: DecomposeConfig,
    /// Seed of the random-forest arrangement strategy.
    pub seed: u64,
    /// When the pending delta forces a refresh.
    pub budget: StalenessBudget,
    /// Value-only updates patch the decomposition in place instead of
    /// growing the delta. Disable to force every update through the
    /// delta (the E-STREAM ablation).
    pub patch_in_place: bool,
    /// Catalog write-through: the current decomposition is persisted
    /// into the versioned [`Catalog`] rooted here at construction and
    /// after every refresh, forming a **version chain** (each refresh a
    /// child of its predecessor). Construction reloads a matching
    /// version when one exists, and
    /// [`restore_at`](DynamicMatrix::restore_at) walks the chain for
    /// point-in-time reloads.
    pub catalog_dir: Option<PathBuf>,
    /// When a refresh may splice the prior decomposition instead of
    /// re-running LA-Decompose on the whole merged matrix (see
    /// [`arrow_core::incremental`]).
    pub incremental: IncrementalPolicy,
    /// Adaptive staleness budget: re-derive `max_delta_nnz` after every
    /// refresh from the **measured** refresh latency vs the measured
    /// per-entry corrected-multiply overhead (an EWMA over the delta
    /// correction's wall time — the kernel level has no cost-model
    /// prediction to lean on). `None` (default) keeps the budget fixed.
    pub adaptive: Option<AdaptiveBudget>,
    /// Serving precision of [`DynamicMatrix::multiply`]. `f32` serves
    /// the base contribution through a compiled half-bandwidth
    /// decomposition ([`CompiledDecomposition`]) and narrows delta-
    /// correction products to f32; `f64` (default) is exact. The f32
    /// error is bounded by [`arrow_core::f32_multiply_error_bound`], and
    /// exactly-representable data (small integers) is served exactly.
    pub dtype: Dtype,
    /// Splice guard: when set, a refresh whose spliced decomposition is
    /// predicted (via [`ServingCostGuard`]) to serve more than this
    /// factor slower than the last cold build re-compacts — discards
    /// the splice and rebuilds cold. `None` (default) serves every
    /// splice the [`IncrementalPolicy`] permits.
    pub recompact_slowdown: Option<f64>,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            decompose: DecomposeConfig::default(),
            seed: 42,
            budget: StalenessBudget::default(),
            patch_in_place: true,
            catalog_dir: None,
            incremental: IncrementalPolicy::default(),
            adaptive: None,
            dtype: Dtype::default(),
            recompact_slowdown: None,
        }
    }
}

/// Streaming counters of a [`DynamicMatrix`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Updates accepted (including no-op updates).
    pub updates: u64,
    /// Updates folded into the decomposition in place.
    pub patched_in_place: u64,
    /// Updates accumulated into the delta.
    pub deferred_to_delta: u64,
    /// Compactions performed (decomposition rebuilt or spliced).
    pub refreshes: u64,
    /// Incremental-vs-fallback split of the refreshes
    /// (`splice.incremental_refreshes + splice.fallback_refreshes =
    /// refreshes`).
    pub splice: SpliceStats,
    /// Multiplies answered through the corrected path.
    pub corrected_multiplies: u64,
    /// Multiplies answered with an empty delta (pure base path).
    pub exact_multiplies: u64,
    /// Point-in-time reloads from the catalog chain
    /// ([`DynamicMatrix::restore_at`]).
    pub restores: u64,
    /// Refreshes where the splice guard discarded a permitted splice and
    /// rebuilt cold (see [`DynamicConfig::recompact_slowdown`]). Always
    /// counted inside `splice.fallback_refreshes` too.
    pub recompactions: u64,
    /// The current adaptively derived `max_delta_nnz` budget (0 until
    /// the first refresh under an [`AdaptiveBudget`] policy).
    pub adaptive_budget_nnz: u64,
}

/// Registry handles behind [`StreamStats`]: every counter lives in the
/// matrix's [`Telemetry`] registry under `stream.*`, and [`StreamStats`]
/// is folded on demand — one set of books.
struct StreamMetrics {
    updates: Counter,
    patched_in_place: Counter,
    deferred_to_delta: Counter,
    refreshes: Counter,
    splice: SpliceCounters,
    corrected_multiplies: Counter,
    exact_multiplies: Counter,
    restores: Counter,
    recompactions: Counter,
    adaptive_budget_nnz: Gauge,
    /// Wall time of one [`DynamicMatrix::multiply`] call (all
    /// iterations, base + correction + σ).
    multiply_seconds: Histogram,
    /// Wall time of one compaction ([`DynamicMatrix::refresh`] with a
    /// non-empty delta), decompose only.
    refresh_seconds: Histogram,
}

impl StreamMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        let r = &telemetry.registry;
        Self {
            updates: r.counter("stream.updates"),
            patched_in_place: r.counter("stream.patched_in_place"),
            deferred_to_delta: r.counter("stream.deferred_to_delta"),
            refreshes: r.counter("stream.refreshes"),
            splice: SpliceCounters::new(r, "stream."),
            corrected_multiplies: r.counter("stream.corrected_multiplies"),
            exact_multiplies: r.counter("stream.exact_multiplies"),
            restores: r.counter("stream.restores"),
            recompactions: r.counter("stream.recompactions"),
            adaptive_budget_nnz: r.gauge("stream.adaptive_budget_nnz"),
            multiply_seconds: r.histogram("stream.multiply.seconds"),
            refresh_seconds: r.histogram("stream.refresh.seconds"),
        }
    }
}

/// A served matrix `A₀ + ΔA` with incremental decomposition maintenance.
/// See the [module docs](self).
pub struct DynamicMatrix {
    base: CsrMatrix<f64>,
    decomposition: ArrowDecomposition,
    delta: DeltaBuilder<f64>,
    /// Canonical CSR view of `delta`, rebuilt lazily after updates.
    delta_csr: Option<CsrMatrix<f64>>,
    version: u64,
    /// The catalogued state no longer reflects `base` (in-place patches).
    persist_dirty: bool,
    /// The write-through catalog, when one is configured.
    catalog: Option<Catalog>,
    /// Fingerprint of the last catalogued revision — the parent of the
    /// next write-through. 0 until something has been persisted. Moves
    /// backwards on [`restore_at`](Self::restore_at) (new refreshes
    /// fork from the restored revision).
    persisted_fp: u128,
    /// Newest revision ever persisted — where a point-in-time restore
    /// starts walking. Unlike `persisted_fp` it does **not** move
    /// backwards on a restore, so restoring to an old version and then
    /// forward again both work.
    chain_head: u128,
    /// Measured corrected-multiply overhead, seconds per delta entry
    /// per iteration (EWMA; 0 = no corrected multiply measured yet).
    corrected_entry_ewma: f64,
    /// Half-bandwidth serving cache: the current decomposition compiled
    /// to f32, built lazily on the first `dtype = f32` multiply and
    /// invalidated whenever the decomposition changes (patch, refresh,
    /// restore).
    compiled_f32: Option<CompiledDecomposition<f32>>,
    /// Splice guard, when [`DynamicConfig::recompact_slowdown`] is set;
    /// holds the cold-build serving baseline across spliced refreshes.
    guard: Option<ServingCostGuard>,
    config: DynamicConfig,
    telemetry: Telemetry,
    metrics: StreamMetrics,
}

impl DynamicMatrix {
    /// Wraps `a`, decomposing it (or reloading the matching catalog
    /// version — same fingerprint, same decompose identity — when a
    /// catalog is configured).
    pub fn new(a: CsrMatrix<f64>, config: DynamicConfig) -> SparseResult<Self> {
        Self::with_telemetry(a, config, Telemetry::new())
    }

    /// [`new`](Self::new) with a caller-supplied telemetry backend —
    /// share a registry with other components, or pass
    /// [`Telemetry::disabled`] to turn every counter, histogram, and
    /// trace event into a no-op (with disabled telemetry
    /// [`stats`](Self::stats) folds all-zero views).
    pub fn with_telemetry(
        a: CsrMatrix<f64>,
        config: DynamicConfig,
        telemetry: Telemetry,
    ) -> SparseResult<Self> {
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        let fingerprint = a.fingerprint();
        let mut catalog = match &config.catalog_dir {
            Some(dir) => {
                let mut c = Catalog::open(dir.clone())?;
                // Pre-catalog single-file persists in the same
                // directory keep working: migrate them in place.
                let root = c.root().to_path_buf();
                c.import_legacy_dir(root, &config.decompose, config.seed)?;
                Some(c)
            }
            None => None,
        };
        let mut version = 0;
        let mut persisted_fp = 0;
        let mut loaded = None;
        if let Some(c) = &mut catalog {
            // Adopt only a decomposition of this exact matrix at this
            // exact decompose identity (width, pruning, level cap,
            // seed) — the catalog records all of it, so a stale or
            // differently configured version is simply a miss.
            if let Some((d, record)) = c.get(fingerprint, &config.decompose, config.seed)? {
                if d.n() == a.rows() {
                    version = record.version;
                    persisted_fp = fingerprint;
                    loaded = Some(d);
                }
            }
        }
        let decomposition = match loaded {
            Some(d) => d,
            None => decompose_snapshot(&a, &config.decompose, config.seed)?,
        };
        let fresh = persisted_fp == 0;
        let n = a.rows();
        let guard = match config.recompact_slowdown {
            Some(slowdown) => {
                let mut g = ServingCostGuard::new(CostModel::default(), 8, slowdown);
                g.observe_cold(&decomposition)?;
                Some(g)
            }
            None => None,
        };
        let mut dm = Self {
            base: a,
            decomposition,
            delta: DeltaBuilder::new(n, n),
            delta_csr: None,
            version,
            persist_dirty: fresh,
            catalog,
            persisted_fp,
            chain_head: persisted_fp,
            corrected_entry_ewma: 0.0,
            compiled_f32: None,
            guard,
            config,
            metrics: StreamMetrics::new(&telemetry),
            telemetry,
        };
        dm.persist_now()?;
        Ok(dm)
    }

    /// Matrix dimension.
    pub fn n(&self) -> u32 {
        self.base.rows()
    }

    /// The current base `A₀` (excludes the pending delta).
    pub fn base(&self) -> &CsrMatrix<f64> {
        &self.base
    }

    /// The current decomposition of `A₀`.
    pub fn decomposition(&self) -> &ArrowDecomposition {
        &self.decomposition
    }

    /// Refresh generation: 0 at construction, +1 per compaction.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Content fingerprint of the current base (`O(nnz)` per call).
    pub fn fingerprint(&self) -> u128 {
        self.base.fingerprint()
    }

    /// Distinct positions pending in the delta.
    pub fn delta_nnz(&self) -> usize {
        self.delta.len()
    }

    /// Absolute mass `Σ |δ|` of the pending delta.
    pub fn delta_mass(&self) -> f64 {
        self.delta.mass()
    }

    /// Streaming counters, folded from the telemetry registry.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            updates: self.metrics.updates.get(),
            patched_in_place: self.metrics.patched_in_place.get(),
            deferred_to_delta: self.metrics.deferred_to_delta.get(),
            refreshes: self.metrics.refreshes.get(),
            splice: self.metrics.splice.stats(),
            corrected_multiplies: self.metrics.corrected_multiplies.get(),
            exact_multiplies: self.metrics.exact_multiplies.get(),
            restores: self.metrics.restores.get(),
            recompactions: self.metrics.recompactions.get(),
            adaptive_budget_nnz: self.metrics.adaptive_budget_nnz.get(),
        }
    }

    /// The metrics registry and tracer behind this matrix
    /// (`stream.*` counters, `stream.multiply.seconds` /
    /// `stream.refresh.seconds` histograms, refresh trace spans).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// `true` once the pending delta exceeds the staleness budget (the
    /// holder should [`refresh`](Self::refresh)).
    pub fn needs_refresh(&self) -> bool {
        self.config
            .budget
            .exceeded(self.delta.len(), self.delta.mass(), self.base.nnz())
    }

    /// The served matrix `A₀ + ΔA`, materialised (zero-sum positions
    /// pruned). This is what a refresh compacts into the next base.
    pub fn merged(&self) -> SparseResult<CsrMatrix<f64>> {
        if self.delta.is_empty() {
            return Ok(self.base.clone());
        }
        ops::apply_delta(&self.base, &self.delta.to_csr())
    }

    /// Applies one update; returns `true` when the staleness budget is
    /// now exceeded. Value-only changes to stored base entries patch the
    /// decomposition in place (if enabled); everything else joins the
    /// delta.
    pub fn apply(&mut self, update: Update) -> SparseResult<bool> {
        let (row, col) = update.position();
        if row >= self.n() || col >= self.n() {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.n(),
                cols: self.n(),
            });
        }
        let additive = update.additive(self.base.get(row, col) + self.delta.get(row, col));
        self.metrics.updates.inc();
        if additive == 0.0 {
            return Ok(self.needs_refresh());
        }
        let patchable = self.config.patch_in_place
            && self.delta.get(row, col) == 0.0
            && self.base.get_mut(row, col).is_some();
        if patchable {
            self.decomposition.patch_values(&[(row, col, additive)])?;
            self.compiled_f32 = None;
            *self
                .base
                .get_mut(row, col)
                .expect("patchable checked the entry exists") += additive;
            self.persist_dirty = true;
            self.metrics.patched_in_place.inc();
        } else {
            self.delta.add(row, col, additive)?;
            self.delta_csr = None;
            self.metrics.deferred_to_delta.inc();
        }
        Ok(self.needs_refresh())
    }

    fn delta_csr(&mut self) -> &CsrMatrix<f64> {
        if self.delta_csr.is_none() {
            self.delta_csr = Some(self.delta.to_csr());
        }
        self.delta_csr.as_ref().expect("just built")
    }

    /// Iterated corrected multiply `X ← σ((A₀ + ΔA) · X)`, `iters` times,
    /// without re-decomposing. Fixed reduction order: base contribution
    /// (levels in peeling order), then the delta product (row-major,
    /// ascending columns), then σ — per iteration.
    ///
    /// Under [`DynamicConfig::dtype`]` = f32` the base contribution runs
    /// through a cached [`CompiledDecomposition<f32>`] (values and
    /// operands at half bandwidth) and delta products narrow to f32;
    /// exactly representable data is still served exactly.
    pub fn multiply(
        &mut self,
        x: &DenseMatrix<f64>,
        iters: u32,
        sigma: Option<fn(f64) -> f64>,
    ) -> SparseResult<DenseMatrix<f64>> {
        if x.rows() != self.n() {
            return Err(SparseError::ShapeMismatch {
                left: (self.n(), self.n()),
                right: (x.rows(), x.cols()),
            });
        }
        let corrected = !self.delta.is_empty();
        if corrected {
            self.metrics.corrected_multiplies.inc();
            self.delta_csr();
        } else {
            self.metrics.exact_multiplies.inc();
        }
        let f32_serving = self.config.dtype == Dtype::F32;
        if f32_serving && self.compiled_f32.is_none() {
            self.compiled_f32 = Some(self.decomposition.compile::<f32>());
        }
        let sw = Stopwatch::start();
        let mut cur = x.clone();
        let mut correction_secs = 0.0f64;
        for _ in 0..iters {
            let mut y = if f32_serving {
                // Half-bandwidth base: the compiled f32 decomposition
                // streams 4-byte values and operands through the fused
                // kernel; the result widens back to the f64 iterate.
                let x32 = DenseMatrix::from_fn(cur.rows(), cur.cols(), |r, c| cur.get(r, c) as f32);
                let y32 = self
                    .compiled_f32
                    .as_ref()
                    .expect("compiled above")
                    .multiply(&x32)?;
                DenseMatrix::from_fn(cur.rows(), cur.cols(), |r, c| y32.get(r, c) as f64)
            } else {
                self.decomposition.multiply(&cur)?
            };
            if corrected {
                let csw = Stopwatch::start();
                let dy = spmm::spmm_dtype(
                    self.delta_csr.as_ref().expect("materialised above"),
                    &cur,
                    self.config.dtype,
                )?;
                y.add_assign(&dy)?;
                correction_secs += csw.elapsed_seconds();
            }
            if let Some(f) = sigma {
                y.map_inplace(f);
            }
            cur = y;
        }
        self.metrics
            .multiply_seconds
            .record_seconds(sw.elapsed_seconds());
        // Fold the measured per-entry correction overhead into the EWMA
        // — the adaptive budget's signal (the kernel level has no cost
        // model to predict it from).
        if corrected && self.config.adaptive.is_some() && iters > 0 {
            let entries = (self.delta.len().max(1) as u64 * iters as u64) as f64;
            let sample = correction_secs / entries;
            self.corrected_entry_ewma = if self.corrected_entry_ewma == 0.0 {
                sample
            } else {
                EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * self.corrected_entry_ewma
            };
        }
        Ok(cur)
    }

    /// Compacts the pending delta into the base: materialises `A₀ + ΔA`,
    /// re-decomposes — incrementally, splicing the prior decomposition
    /// around the delta's affected region, with automatic fallback to a
    /// full LA-Decompose per the configured [`IncrementalPolicy`] — bumps
    /// the version, and writes through to the persist path. Returns
    /// `false` (and does **not** re-decompose) when the delta is empty —
    /// compaction is idempotent.
    pub fn refresh(&mut self) -> SparseResult<bool> {
        if self.delta.is_empty() {
            // Nothing to compact; still flush deferred in-place patches.
            self.persist_now()?;
            return Ok(false);
        }
        let merged = self.merged()?;
        let touched = self.delta.touched_vertices();
        let span = self.telemetry.tracer.start("refresh", SpanId::NONE, None);
        let sw = Stopwatch::start();
        let (mut d, mut outcome) = decompose_snapshot_incremental(
            &merged,
            &self.config.decompose,
            self.config.seed,
            Some(&self.decomposition),
            Some(&touched),
            &self.config.incremental,
        )?;
        // Splice guard: a permitted splice predicted to serve slower
        // than the budget over the last cold build is discarded for a
        // cold re-compaction.
        if outcome.incremental {
            if let Some(g) = &mut self.guard {
                if g.splice_verdict(&d)?.recompact {
                    d = decompose_snapshot(&merged, &self.config.decompose, self.config.seed)?;
                    outcome.incremental = false;
                    outcome.fallback = Some(FallbackReason::CostGuard);
                    outcome.order = d.order() as u32;
                    self.metrics.recompactions.inc();
                }
            }
        }
        if !outcome.incremental {
            if let Some(g) = &mut self.guard {
                g.observe_cold(&d)?;
            }
        }
        let refresh_seconds = sw.elapsed_seconds();
        self.metrics.refresh_seconds.record_seconds(refresh_seconds);
        self.telemetry.tracer.end_with(
            span,
            if outcome.incremental {
                format!("incremental affected={}", outcome.affected_vertices)
            } else if outcome.fallback == Some(FallbackReason::CostGuard) {
                "recompacted (splice guard)".to_string()
            } else {
                "cold fallback".to_string()
            },
        );
        self.metrics.splice.record(&outcome);
        self.decomposition = d;
        self.compiled_f32 = None;
        self.base = merged;
        self.delta.clear();
        self.delta_csr = None;
        self.version += 1;
        self.persist_dirty = true;
        self.metrics.refreshes.inc();
        // Adaptive retune: measured refresh seconds vs the measured
        // per-entry corrected-multiply EWMA. Cheap (incremental)
        // refreshes tighten the budget; expensive cold rebuilds (or an
        // unmeasured overhead) relax it.
        if let Some(policy) = self.config.adaptive {
            let nnz = policy.retune(
                &mut self.config.budget,
                refresh_seconds,
                self.corrected_entry_ewma,
            );
            self.metrics.adaptive_budget_nnz.set(nnz as u64);
        }
        self.persist_now()?;
        Ok(true)
    }

    /// Point-in-time restore: walks this matrix's catalog version chain
    /// backwards from the latest persisted revision and reloads the
    /// decomposition recorded at `version`. The base matrix is
    /// reconstructed from the decomposition (they are the same
    /// operator), the pending delta is discarded, and the stream
    /// continues from the restored revision. Returns `false` — with
    /// nothing changed — when no catalog is configured or the chain
    /// does not reach that version.
    pub fn restore_at(&mut self, version: u64) -> SparseResult<bool> {
        let head = self.chain_head;
        let (config, seed) = (self.config.decompose, self.config.seed);
        let Some(catalog) = &mut self.catalog else {
            return Ok(false);
        };
        let Some((d, record)) = catalog.restore_at(head, &config, seed, version)? else {
            return Ok(false);
        };
        self.base = d.reconstruct()?;
        self.decomposition = d;
        self.compiled_f32 = None;
        self.delta.clear();
        self.delta_csr = None;
        self.version = record.version;
        if let Some(g) = &mut self.guard {
            g.observe_cold(&self.decomposition)?;
        }
        self.persisted_fp = record.fingerprint;
        self.persist_dirty = false;
        self.metrics.restores.inc();
        Ok(true)
    }

    /// Writes the current decomposition into the configured catalog as
    /// a child version of the previously persisted revision (the
    /// version chain). No-op without a catalog or when the chain is
    /// already current. In-place patches mark the state stale; they are
    /// flushed here and at the next [`refresh`](Self::refresh) as a
    /// **patch revision**: a child record under a new fingerprint that
    /// keeps the current version number (patches do not bump
    /// [`version`](Self::version)). [`restore_at`](Self::restore_at)
    /// resolves a version to the *newest* record carrying it along the
    /// walk, i.e. the last patched state of that revision — the chain
    /// analogue of the old single-file format overwriting in place,
    /// except the earlier state stays reachable through the lineage.
    pub fn persist_now(&mut self) -> SparseResult<()> {
        if self.catalog.is_none() || !self.persist_dirty {
            return Ok(());
        }
        let fingerprint = self.base.fingerprint();
        let parent = if self.persisted_fp == fingerprint {
            // Content unchanged (e.g. patches that cancelled out):
            // nothing new to chain.
            self.persist_dirty = false;
            return Ok(());
        } else {
            self.persisted_fp
        };
        let (config, seed, version) = (self.config.decompose, self.config.seed, self.version);
        let catalog = self.catalog.as_mut().expect("checked above");
        catalog.put(
            &self.decomposition,
            fingerprint,
            &config,
            seed,
            version,
            parent,
        )?;
        self.persisted_fp = fingerprint;
        self.chain_head = fingerprint;
        self.persist_dirty = false;
        Ok(())
    }

    /// The write-through catalog, when one is configured (inspection,
    /// GC between streams).
    pub fn catalog(&self) -> Option<&Catalog> {
        self.catalog.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;
    use amd_spmm::reference::iterated_spmm;

    fn ring(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    fn config(b: u32) -> DynamicConfig {
        DynamicConfig {
            decompose: DecomposeConfig::with_width(b),
            budget: StalenessBudget::nnz_cap(6),
            ..DynamicConfig::default()
        }
    }

    #[test]
    fn value_updates_patch_in_place() {
        let n = 40;
        let mut dm = DynamicMatrix::new(ring(n), config(8)).unwrap();
        // Re-weight existing edges only: the delta must stay empty.
        for i in 0..10u32 {
            assert!(!dm
                .apply(Update::Add {
                    row: i,
                    col: i + 1,
                    delta: 2.0
                })
                .unwrap());
        }
        assert_eq!(dm.delta_nnz(), 0);
        assert_eq!(dm.stats().patched_in_place, 10);
        assert_eq!(dm.stats().refreshes, 0);
        // The decomposition tracks the edits exactly.
        let mut want = ring(n);
        for i in 0..10u32 {
            *want.get_mut(i, i + 1).unwrap() += 2.0;
        }
        assert_eq!(dm.decomposition().validate(&want).unwrap(), 0.0);
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + c) % 5) as f64 - 2.0);
        let got = dm.multiply(&x, 2, None).unwrap();
        assert_eq!(got, iterated_spmm(&want, &x, 2).unwrap());
        assert_eq!(dm.stats().exact_multiplies, 1);
    }

    #[test]
    fn structural_updates_go_to_delta_and_correct() {
        let n = 32;
        let mut dm = DynamicMatrix::new(ring(n), config(8)).unwrap();
        for [a, b] in [
            Update::Add {
                row: 0,
                col: 16,
                delta: 2.0,
            }
            .sym_pair(),
            Update::Add {
                row: 5,
                col: 20,
                delta: 1.0,
            }
            .sym_pair(),
        ] {
            dm.apply(a).unwrap();
            dm.apply(b).unwrap();
        }
        assert_eq!(dm.delta_nnz(), 4);
        assert_eq!(dm.stats().deferred_to_delta, 4);
        let x = DenseMatrix::from_fn(n, 3, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let got = dm.multiply(&x, 3, None).unwrap();
        let want = iterated_spmm(&dm.merged().unwrap(), &x, 3).unwrap();
        assert_eq!(got, want, "integer data must match bit for bit");
        assert_eq!(dm.stats().corrected_multiplies, 1);
    }

    #[test]
    fn set_computes_additive_difference() {
        let n = 24;
        let mut dm = DynamicMatrix::new(ring(n), config(8)).unwrap();
        // Set an existing edge to 5 (in-place), a new position to 3
        // (delta), then set the new position again to 1 (delta update).
        dm.apply(Update::Set {
            row: 0,
            col: 1,
            value: 5.0,
        })
        .unwrap();
        assert_eq!(dm.base().get(0, 1), 5.0);
        dm.apply(Update::Set {
            row: 0,
            col: 12,
            value: 3.0,
        })
        .unwrap();
        dm.apply(Update::Set {
            row: 0,
            col: 12,
            value: 1.0,
        })
        .unwrap();
        assert_eq!(dm.merged().unwrap().get(0, 12), 1.0);
        // Setting back to the current value is a no-op.
        let before = dm.delta_nnz();
        dm.apply(Update::Set {
            row: 0,
            col: 12,
            value: 1.0,
        })
        .unwrap();
        assert_eq!(dm.delta_nnz(), before);
    }

    #[test]
    fn refresh_compacts_and_is_idempotent() {
        let n = 30;
        let mut dm = DynamicMatrix::new(ring(n), config(8)).unwrap();
        dm.apply(Update::Add {
            row: 2,
            col: 17,
            delta: 4.0,
        })
        .unwrap();
        // Remove an existing edge entirely (in-place patch to 0 keeps the
        // position; a Set through the delta is structural only for new
        // positions — force a structural one too).
        dm.apply(Update::Add {
            row: 17,
            col: 2,
            delta: 4.0,
        })
        .unwrap();
        let merged_before = dm.merged().unwrap();
        assert!(dm.refresh().unwrap());
        assert_eq!(dm.version(), 1);
        assert_eq!(dm.delta_nnz(), 0);
        assert_eq!(dm.base(), &merged_before);
        assert_eq!(dm.decomposition().validate(dm.base()).unwrap(), 0.0);
        // Idempotent: a second refresh with no pending delta is a no-op.
        assert!(!dm.refresh().unwrap());
        assert_eq!(dm.version(), 1);
        assert_eq!(dm.stats().refreshes, 1);
    }

    #[test]
    fn budget_trips_after_enough_structural_updates() {
        let n = 40;
        let mut dm = DynamicMatrix::new(ring(n), config(8)).unwrap();
        let mut tripped = false;
        for i in 0..8u32 {
            tripped = dm
                .apply(Update::Add {
                    row: i,
                    col: i + 12,
                    delta: 1.0,
                })
                .unwrap();
            if tripped {
                break;
            }
        }
        assert!(tripped, "nnz cap of 6 must trip within 8 inserts");
        assert!(dm.needs_refresh());
        dm.refresh().unwrap();
        assert!(!dm.needs_refresh());
    }

    #[test]
    fn persist_roundtrip_skips_decompose_and_tracks_version() {
        let dir = std::env::temp_dir().join(format!("amd-stream-dyn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let n = 36;
        let mut cfg = config(8);
        cfg.catalog_dir = Some(dir.clone());
        let mut dm = DynamicMatrix::new(ring(n), cfg.clone()).unwrap();
        dm.apply(Update::Add {
            row: 0,
            col: 18,
            delta: 1.0,
        })
        .unwrap();
        dm.refresh().unwrap();
        let merged = dm.base().clone();
        assert_eq!(dm.version(), 1);
        // The refresh chained a child version onto the root.
        {
            let catalog = dm.catalog().unwrap();
            let rec = catalog
                .record(merged.fingerprint(), &cfg.decompose, cfg.seed)
                .unwrap();
            assert_eq!(rec.version, 1);
            assert_eq!(rec.parent, ring(n).fingerprint());
        }
        drop(dm);
        // Reload under the merged matrix: fingerprint matches, so the
        // catalogued decomposition (version 1) is adopted as-is.
        let dm2 = DynamicMatrix::new(merged.clone(), cfg.clone()).unwrap();
        assert_eq!(dm2.version(), 1);
        assert_eq!(dm2.decomposition().validate(&merged).unwrap(), 0.0);
        // The same matrix at a *different* arrow width must not adopt
        // the chain (it was written at width 8) — the catalog records
        // the full decompose identity.
        let mut narrow = cfg.clone();
        narrow.decompose = DecomposeConfig::with_width(4);
        let redone = DynamicMatrix::new(merged.clone(), narrow).unwrap();
        assert_eq!(redone.version(), 0, "stale width must not be adopted");
        assert_eq!(redone.decomposition().b(), 4);
        // A *different* matrix gets its own chain, not this one.
        let other = DynamicMatrix::new(ring(n), cfg).unwrap();
        assert_eq!(other.version(), 0);
        assert_eq!(other.decomposition().validate(&ring(n)).unwrap(), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_at_walks_the_version_chain() {
        let dir = std::env::temp_dir().join(format!("amd-stream-restore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let n = 32;
        let mut cfg = config(8);
        cfg.catalog_dir = Some(dir.clone());
        let mut dm = DynamicMatrix::new(ring(n), cfg).unwrap();
        let base_v0 = dm.base().clone();
        // Two refreshes → versions 1 and 2 chained behind the root.
        for (r, c) in [(0u32, 12u32), (3, 17)] {
            dm.apply(Update::Add {
                row: r,
                col: c,
                delta: 2.0,
            })
            .unwrap();
            dm.refresh().unwrap();
        }
        let base_v2 = dm.base().clone();
        assert_eq!(dm.version(), 2);
        // Point-in-time restore to version 0: the base is reconstructed
        // from the catalogued decomposition, bit-exactly.
        assert!(dm.restore_at(0).unwrap());
        assert_eq!(dm.version(), 0);
        assert_eq!(dm.base(), &base_v0);
        assert_eq!(dm.delta_nnz(), 0, "pending delta discarded");
        assert_eq!(dm.stats().restores, 1);
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + c) % 5) as f64 - 2.0);
        let got = dm.multiply(&x, 2, None).unwrap();
        assert_eq!(got, iterated_spmm(&base_v0, &x, 2).unwrap());
        // Forward again to the head.
        assert!(dm.restore_at(2).unwrap());
        assert_eq!(dm.base(), &base_v2);
        // Unreachable versions change nothing.
        assert!(!dm.restore_at(9).unwrap());
        assert_eq!(dm.version(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_without_catalog_is_a_clean_no_op() {
        let mut dm = DynamicMatrix::new(ring(24), config(8)).unwrap();
        assert!(!dm.restore_at(0).unwrap());
        assert_eq!(dm.stats().restores, 0);
    }

    #[test]
    fn adaptive_budget_retunes_from_measured_signals() {
        let n = 40;
        let mut cfg = config(8);
        cfg.budget = StalenessBudget::nnz_cap(4);
        cfg.adaptive = Some(AdaptiveBudget::default());
        let mut dm = DynamicMatrix::new(ring(n), cfg).unwrap();
        // Corrected multiplies feed the per-entry EWMA…
        for i in 0..3u32 {
            dm.apply(Update::Add {
                row: i,
                col: i + 15,
                delta: 1.0,
            })
            .unwrap();
        }
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + c) % 3) as f64);
        dm.multiply(&x, 2, None).unwrap();
        // …and the refresh retunes max_delta_nnz from measurements.
        dm.refresh().unwrap();
        let derived = dm.stats().adaptive_budget_nnz;
        assert!(derived > 0, "budget must be re-derived after the refresh");
        assert!(
            derived >= AdaptiveBudget::default().min_nnz as u64
                && derived <= AdaptiveBudget::default().max_nnz as u64,
            "derived budget {derived} within clamps"
        );
        // Serving is still exact after the retune.
        let got = dm.multiply(&x, 2, None).unwrap();
        assert_eq!(got, iterated_spmm(dm.base(), &x, 2).unwrap());
    }

    #[test]
    fn bounds_and_shape_validated() {
        let n = 16;
        let mut dm = DynamicMatrix::new(ring(n), config(4)).unwrap();
        assert!(dm
            .apply(Update::Add {
                row: n,
                col: 0,
                delta: 1.0
            })
            .is_err());
        assert!(DynamicMatrix::new(CsrMatrix::zeros(3, 4), config(4)).is_err());
        let bad_x = DenseMatrix::zeros(n + 1, 1);
        assert!(dm.multiply(&bad_x, 1, None).is_err());
    }

    #[test]
    fn patching_disabled_routes_everything_to_delta() {
        let n = 24;
        let mut cfg = config(8);
        cfg.patch_in_place = false;
        let mut dm = DynamicMatrix::new(ring(n), cfg).unwrap();
        dm.apply(Update::Add {
            row: 0,
            col: 1,
            delta: 2.0,
        })
        .unwrap();
        assert_eq!(dm.stats().patched_in_place, 0);
        assert_eq!(dm.delta_nnz(), 1);
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + 2 * c) % 5) as f64);
        let got = dm.multiply(&x, 2, None).unwrap();
        assert_eq!(got, iterated_spmm(&dm.merged().unwrap(), &x, 2).unwrap());
    }

    #[test]
    fn f32_serving_is_exact_on_integer_data() {
        // Small-integer values and operands round-trip f32 exactly, so
        // the half-bandwidth stream must serve bit-identical answers —
        // through base-only, corrected, patched, and refreshed states.
        let n = 48;
        let mut cfg = config(8);
        cfg.dtype = Dtype::F32;
        let mut dm = DynamicMatrix::new(ring(n), cfg).unwrap();
        let x = DenseMatrix::from_fn(n, 3, |r, c| ((r + 2 * c) % 7) as f64 - 3.0);
        let got = dm.multiply(&x, 2, None).unwrap();
        assert_eq!(got, iterated_spmm(&ring(n), &x, 2).unwrap());
        // Corrected path (structural delta) and in-place patch.
        dm.apply(Update::Add {
            row: 0,
            col: 5,
            delta: 3.0,
        })
        .unwrap();
        dm.apply(Update::Add {
            row: 1,
            col: 2,
            delta: 2.0,
        })
        .unwrap();
        let merged = dm.merged().unwrap();
        let got = dm.multiply(&x, 2, None).unwrap();
        assert_eq!(got, iterated_spmm(&merged, &x, 2).unwrap());
        // Refresh invalidates the compiled cache; answers stay exact.
        assert!(dm.refresh().unwrap());
        let got = dm.multiply(&x, 2, None).unwrap();
        assert_eq!(got, iterated_spmm(&merged, &x, 2).unwrap());
    }

    #[test]
    fn f32_serving_stays_within_the_derived_error_bound() {
        let n = 64;
        let mut cfg = config(8);
        cfg.dtype = Dtype::F32;
        let mut dm = DynamicMatrix::new(ring(n), cfg).unwrap();
        // Non-representable values through the in-place patch path.
        for i in 0..8u32 {
            dm.apply(Update::Add {
                row: i,
                col: i + 1,
                delta: 0.1 + i as f64 * 0.01,
            })
            .unwrap();
        }
        let x = DenseMatrix::from_fn(n, 2, |r, c| 0.3 + ((r + c) % 5) as f64 * 0.7);
        let got = dm.multiply(&x, 1, None).unwrap();
        let exact = iterated_spmm(&dm.merged().unwrap(), &x, 1).unwrap();
        let bound = arrow_core::f32_multiply_error_bound(dm.decomposition(), &x).unwrap();
        for r in 0..n {
            for c in 0..2 {
                let err = (got.get(r, c) - exact.get(r, c)).abs();
                assert!(
                    err <= bound.get(r, c),
                    "({r},{c}): err {err:e} exceeds bound {:e}",
                    bound.get(r, c)
                );
            }
        }
    }

    #[test]
    fn splice_guard_recompacts_deep_splices() {
        // A zero-tolerance guard turns every deepening splice into a
        // cold re-compaction; the stream keeps serving exactly.
        let n = 64;
        let mut cfg = config(8);
        cfg.budget = StalenessBudget::nnz_cap(1);
        cfg.incremental = IncrementalPolicy {
            max_affected_fraction: 1.0,
            max_order: 64,
            ..IncrementalPolicy::default()
        };
        cfg.recompact_slowdown = Some(1.0);
        let mut dm = DynamicMatrix::new(ring(n), cfg).unwrap();
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + c) % 5) as f64 - 2.0);
        let mut recompacted = false;
        for round in 0..6u32 {
            let (u, v) = (round, round + n / 2);
            if dm
                .apply(Update::Add {
                    row: u,
                    col: v,
                    delta: 1.0,
                })
                .unwrap()
            {
                dm.refresh().unwrap();
            }
            let got = dm.multiply(&x, 1, None).unwrap();
            assert_eq!(got, iterated_spmm(&dm.merged().unwrap(), &x, 1).unwrap());
            if dm.stats().recompactions > 0 {
                recompacted = true;
                break;
            }
        }
        assert!(recompacted, "deep splices never tripped a 1.0× budget");
        assert!(
            dm.stats().splice.fallback_refreshes >= dm.stats().recompactions,
            "guard rebuilds are recorded as fallback refreshes"
        );
    }
}
