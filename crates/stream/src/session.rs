//! Back-compat serving wrapper: one tenant, synchronous refresh.
//!
//! [`StreamingEngine`] predates the multi-tenant [`StreamHub`] and is
//! now a thin wrapper over a hub holding exactly one tenant, with
//! `async_refresh` off so every counter and blocking behaviour matches
//! the original: a budget trip compacts inline (the caller pays the
//! LA-Decompose latency) and queries are answered as `A₀ + ΔA` through
//! the corrected path between refreshes. New code that wants many
//! mutating matrices, background rebuilds, or fairness control should
//! use [`StreamHub`] directly.
//!
//! Consistency model (unchanged): the **flush is the consistency
//! point**. A query is answered against the served operator as of the
//! flush that answers it — i.e. including every update applied before
//! that flush, whether the update arrived before or after the query was
//! submitted.
//!
//! [`StreamHub`]: crate::StreamHub

use crate::budget::StalenessBudget;
use crate::hub::{HubConfig, StreamHub, TenantId};
use crate::update::Update;
use amd_engine::{CacheStats, EngineConfig, EngineStats, MatrixId, QueryId, QueryResponse};
use amd_sparse::{CsrMatrix, DeltaBuilder, SparseResult};
use amd_spmm::traits::Sigma;

/// Configuration of a [`StreamingEngine`].
#[derive(Debug, Clone, Default)]
pub struct StreamingConfig {
    /// The wrapped engine's configuration (cache, planner, batcher).
    pub engine: EngineConfig,
    /// When the pending delta forces a refresh.
    pub budget: StalenessBudget,
    /// Refresh immediately from [`update`](StreamingEngine::update) when
    /// the budget trips (`true`, default), or leave refreshes to explicit
    /// [`refresh`](StreamingEngine::refresh) calls (`false`).
    pub auto_refresh: bool,
}

impl StreamingConfig {
    /// Default engine, the given budget, auto-refresh on.
    pub fn with_budget(budget: StalenessBudget) -> Self {
        Self {
            engine: EngineConfig::default(),
            budget,
            auto_refresh: true,
        }
    }
}

/// A serving engine for one mutating matrix. See the [module docs](self).
pub struct StreamingEngine {
    hub: StreamHub,
    tenant: TenantId,
}

impl StreamingEngine {
    /// Stands up an engine and registers `a` (one cold decompose, or a
    /// disk load if the engine's spill directory already holds it).
    pub fn new(a: CsrMatrix<f64>, config: StreamingConfig) -> SparseResult<Self> {
        let mut hub = StreamHub::new(HubConfig {
            engine: config.engine,
            budget: config.budget,
            auto_refresh: config.auto_refresh,
            // Synchronous semantics: the original API compacts inline.
            async_refresh: false,
            ..HubConfig::default()
        })?;
        let tenant = hub.admit(a)?;
        Ok(Self { hub, tenant })
    }

    /// Handle of the current binding (changes at every refresh — the
    /// merged matrix has a new fingerprint).
    pub fn id(&self) -> MatrixId {
        self.hub
            .matrix_id(self.tenant)
            .expect("the stream's tenant is always admitted")
    }

    /// Streaming revision of the binding (0 cold, +1 per refresh).
    pub fn version(&self) -> u64 {
        self.hub
            .version(self.tenant)
            .expect("the stream's matrix is always bound")
    }

    /// The registered base `A₀` (excludes the pending delta).
    pub fn base(&self) -> &CsrMatrix<f64> {
        self.hub
            .base(self.tenant)
            .expect("the stream's tenant is always admitted")
    }

    /// The pending delta accumulator `ΔA`.
    pub fn delta(&self) -> &DeltaBuilder<f64> {
        self.hub
            .delta(self.tenant)
            .expect("the stream's tenant is always admitted")
    }

    /// Distinct positions pending in the delta.
    pub fn delta_nnz(&self) -> usize {
        self.hub
            .delta_nnz(self.tenant)
            .expect("the stream's tenant is always admitted")
    }

    /// Absolute mass `Σ |δ|` of the pending delta.
    pub fn delta_mass(&self) -> f64 {
        self.hub
            .delta_mass(self.tenant)
            .expect("the stream's tenant is always admitted")
    }

    /// `true` once the pending delta exceeds the staleness budget.
    pub fn needs_refresh(&self) -> bool {
        self.hub
            .needs_refresh(self.tenant)
            .expect("the stream's tenant is always admitted")
    }

    /// The wrapped engine's serving counters.
    pub fn engine_stats(&self) -> EngineStats {
        self.hub.engine_stats()
    }

    /// The wrapped engine's decomposition-cache counters (the
    /// cold-decompose probe).
    pub fn cache_stats(&self) -> CacheStats {
        self.hub.cache_stats()
    }

    /// The algorithm bound for the current binding.
    pub fn chosen_algorithm(&self) -> &str {
        self.hub
            .chosen_algorithm(self.tenant)
            .expect("the stream's matrix is always bound")
    }

    /// The planner's current ranking (re-computed at every refresh).
    pub fn plan_report(&self) -> &[amd_engine::Prediction] {
        self.hub
            .plan_report(self.tenant)
            .expect("the stream's matrix is always bound")
    }

    /// Applies one update to the served matrix; returns `true` when the
    /// update triggered (auto-refresh on) or requires (off) a refresh.
    pub fn update(&mut self, update: Update) -> SparseResult<bool> {
        self.hub.update(self.tenant, update)
    }

    /// Compacts the pending delta into the base and rebinds the engine:
    /// merged matrix, new fingerprint, fresh decomposition (through the
    /// cache, write-through), full planner re-ranking, version +1.
    /// Returns `false` when the delta is empty (no-op).
    pub fn refresh(&mut self) -> SparseResult<bool> {
        self.hub.refresh(self.tenant)
    }

    /// Enqueues a multiply query against the served matrix; answers
    /// arrive from [`flush`](Self::flush).
    pub fn submit(
        &mut self,
        x: Vec<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<QueryId> {
        self.hub.submit(self.tenant, x, iters, sigma)
    }

    /// Answers every pending query against the served operator
    /// `A₀ + ΔA` as of now (see the consistency model in the
    /// [module docs](self)).
    pub fn flush(&mut self) -> SparseResult<Vec<QueryResponse>> {
        self.hub.flush()
    }

    /// Runs one query immediately, bypassing the batcher.
    pub fn run_single(
        &mut self,
        x: Vec<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<QueryResponse> {
        self.hub.run_single(self.tenant, x, iters, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;
    use amd_sparse::{ops, DenseMatrix};
    use amd_spmm::reference::iterated_spmm;

    fn ring(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    fn config(cap: usize) -> StreamingConfig {
        StreamingConfig {
            engine: EngineConfig {
                arrow_width: 8,
                target_ranks: 4,
                ..EngineConfig::default()
            },
            budget: StalenessBudget::nnz_cap(cap),
            auto_refresh: true,
        }
    }

    #[test]
    fn corrected_serving_matches_merged_reference() {
        let n = 40;
        let mut s = StreamingEngine::new(ring(n), config(100)).unwrap();
        for u in (Update::Add {
            row: 0,
            col: 20,
            delta: 2.0,
        })
        .sym_pair()
        {
            s.update(u).unwrap();
        }
        let x: Vec<f64> = (0..n).map(|r| ((r % 9) as f64) - 4.0).collect();
        s.submit(x.clone(), 2, None).unwrap();
        let resp = s.flush().unwrap();
        let merged = ops::apply_delta(s.base(), &s.delta().to_csr()).unwrap();
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = iterated_spmm(&merged, &xm, 2).unwrap();
        assert_eq!(resp[0].y, want.data());
        assert_eq!(s.engine_stats().corrected_runs, 1);
        assert_eq!(s.cache_stats().decompositions, 1, "no cold decompose");
    }

    #[test]
    fn auto_refresh_trips_on_budget_and_rebinds() {
        let n = 36;
        let mut s = StreamingEngine::new(ring(n), config(4)).unwrap();
        let id0 = s.id();
        assert_eq!(s.version(), 0);
        let mut refreshed = false;
        for i in 0..6u32 {
            refreshed = s
                .update(Update::Add {
                    row: i,
                    col: i + 10,
                    delta: 1.0,
                })
                .unwrap();
            if refreshed {
                break;
            }
        }
        assert!(refreshed, "cap 4 must trip within 6 inserts");
        assert_ne!(s.id(), id0);
        assert_eq!(s.version(), 1);
        assert_eq!(s.delta_nnz(), 0);
        assert_eq!(s.engine_stats().refreshes, 1);
        // The refresh no longer pays a second cold LA-Decompose: the
        // decomposition is spliced (or rebuilt) outside the cache and
        // admitted, so `decompositions` stays at the admission's one.
        assert_eq!(s.cache_stats().decompositions, 1, "cold admission only");
        assert_eq!(s.cache_stats().admitted, 1, "refresh admitted its result");
        // Post-refresh serving is the plain base path.
        let x: Vec<f64> = vec![1.0; n as usize];
        s.run_single(x, 1, None).unwrap();
        assert_eq!(s.engine_stats().corrected_runs, 0);
    }

    #[test]
    fn manual_refresh_mode_reports_pressure() {
        let n = 24;
        let mut cfg = config(2);
        cfg.auto_refresh = false;
        let mut s = StreamingEngine::new(ring(n), cfg).unwrap();
        for i in 0..3u32 {
            s.update(Update::Add {
                row: i,
                col: i + 7,
                delta: 1.0,
            })
            .unwrap();
        }
        assert!(s.needs_refresh());
        assert_eq!(s.engine_stats().refreshes, 0, "no auto refresh");
        assert!(s.refresh().unwrap());
        assert!(!s.needs_refresh());
        assert_eq!(s.version(), 1);
        // Refreshing again with no pending delta is a no-op.
        assert!(!s.refresh().unwrap());
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn set_and_remove_edges_through_the_stream() {
        let n = 30;
        let mut s = StreamingEngine::new(ring(n), config(100)).unwrap();
        // Remove the (0,1)/(1,0) edge and re-weight (2,3).
        for u in (Update::Set {
            row: 0,
            col: 1,
            value: 0.0,
        })
        .sym_pair()
        {
            s.update(u).unwrap();
        }
        for u in (Update::Set {
            row: 2,
            col: 3,
            value: 4.0,
        })
        .sym_pair()
        {
            s.update(u).unwrap();
        }
        let x: Vec<f64> = (0..n).map(|r| (r % 3) as f64).collect();
        let resp = s.run_single(x.clone(), 1, None).unwrap();
        let mut want_m = ring(n);
        *want_m.get_mut(0, 1).unwrap() = 0.0;
        *want_m.get_mut(1, 0).unwrap() = 0.0;
        *want_m.get_mut(2, 3).unwrap() = 4.0;
        *want_m.get_mut(3, 2).unwrap() = 4.0;
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = iterated_spmm(&want_m, &xm, 1).unwrap();
        assert_eq!(resp.y, want.data());
        // After refresh the removed edge leaves the structure entirely.
        s.refresh().unwrap();
        assert_eq!(s.base().get(0, 1), 0.0);
        assert_eq!(s.base().nnz(), ring(n).nnz() - 2);
    }

    #[test]
    fn updates_out_of_bounds_rejected() {
        let n = 16;
        let mut s = StreamingEngine::new(ring(n), config(8)).unwrap();
        assert!(s
            .update(Update::Add {
                row: n,
                col: 0,
                delta: 1.0
            })
            .is_err());
    }
}
