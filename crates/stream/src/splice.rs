//! Shared incremental-refresh (splice) counters.
//!
//! Every holder of a refreshing decomposition — [`DynamicMatrix`]
//! per-instance, [`StreamHub`] per-tenant and hub-wide — folds
//! [`RefreshOutcome`]s the same way; this is the single definition of
//! that fold so the accounting cannot diverge between serving layers.
//!
//! [`DynamicMatrix`]: crate::DynamicMatrix
//! [`StreamHub`]: crate::StreamHub

use amd_obs::{Counter, Registry};
use arrow_core::incremental::RefreshOutcome;

/// Counters of the delta-localized refresh path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpliceStats {
    /// Refreshes that spliced the prior decomposition (delta-localized
    /// re-decomposition) instead of re-running LA-Decompose in full.
    pub incremental_refreshes: u64,
    /// Refreshes that attempted the incremental path but fell back to a
    /// cold decompose (region too large, order too deep, prior evicted,
    /// …). Every recorded refresh is one or the other.
    pub fallback_refreshes: u64,
    /// Vertices whose arrangement survived incremental refreshes
    /// untouched, summed over refreshes.
    pub reused_vertices: u64,
    /// Matrix dimension summed over recorded refreshes — the
    /// denominator of
    /// [`reused_vertex_fraction`](Self::reused_vertex_fraction).
    pub refresh_total_vertices: u64,
}

impl SpliceStats {
    /// Folds one refresh outcome into the counters.
    pub fn record(&mut self, outcome: &RefreshOutcome) {
        if outcome.incremental {
            self.incremental_refreshes += 1;
            self.reused_vertices += (outcome.total_vertices - outcome.affected_vertices) as u64;
        } else {
            self.fallback_refreshes += 1;
        }
        self.refresh_total_vertices += outcome.total_vertices as u64;
    }

    /// Fraction of vertices (summed over recorded refreshes) whose
    /// arrangement was reused rather than recomputed.
    pub fn reused_vertex_fraction(&self) -> f64 {
        if self.refresh_total_vertices == 0 {
            return 0.0;
        }
        self.reused_vertices as f64 / self.refresh_total_vertices as f64
    }
}

/// Registry-backed splice counters: the metric handles behind a
/// [`SpliceStats`] view. Recording goes through
/// [`SpliceStats::record`] — the one fold definition — and the deltas
/// land in the registry, so the serving layers publish their
/// incremental-vs-fallback split without keeping a second set of books.
#[derive(Clone)]
pub struct SpliceCounters {
    incremental_refreshes: Counter,
    fallback_refreshes: Counter,
    reused_vertices: Counter,
    refresh_total_vertices: Counter,
}

impl SpliceCounters {
    /// Handles named `<prefix>splice.*` in `registry` (e.g. prefix
    /// `"hub."` publishes `hub.splice.incremental_refreshes`, …).
    pub fn new(registry: &Registry, prefix: &str) -> Self {
        Self {
            incremental_refreshes: registry
                .counter(&format!("{prefix}splice.incremental_refreshes")),
            fallback_refreshes: registry.counter(&format!("{prefix}splice.fallback_refreshes")),
            reused_vertices: registry.counter(&format!("{prefix}splice.reused_vertices")),
            refresh_total_vertices: registry
                .counter(&format!("{prefix}splice.refresh_total_vertices")),
        }
    }

    /// Folds one refresh outcome into the counters (same fold as
    /// [`SpliceStats::record`]).
    pub fn record(&self, outcome: &RefreshOutcome) {
        let mut delta = SpliceStats::default();
        delta.record(outcome);
        self.incremental_refreshes.add(delta.incremental_refreshes);
        self.fallback_refreshes.add(delta.fallback_refreshes);
        self.reused_vertices.add(delta.reused_vertices);
        self.refresh_total_vertices
            .add(delta.refresh_total_vertices);
    }

    /// The counters as a [`SpliceStats`] view.
    pub fn stats(&self) -> SpliceStats {
        SpliceStats {
            incremental_refreshes: self.incremental_refreshes.get(),
            fallback_refreshes: self.fallback_refreshes.get(),
            reused_vertices: self.reused_vertices.get(),
            refresh_total_vertices: self.refresh_total_vertices.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(incremental: bool, affected: u32, total: u32) -> RefreshOutcome {
        RefreshOutcome {
            incremental,
            fallback: None,
            affected_vertices: affected,
            total_vertices: total,
            order: 1,
            timings: Default::default(),
        }
    }

    #[test]
    fn record_folds_both_paths() {
        let mut s = SpliceStats::default();
        assert_eq!(s.reused_vertex_fraction(), 0.0);
        s.record(&outcome(true, 25, 100));
        s.record(&outcome(false, 60, 100));
        assert_eq!(s.incremental_refreshes, 1);
        assert_eq!(s.fallback_refreshes, 1);
        assert_eq!(s.reused_vertices, 75);
        assert_eq!(s.refresh_total_vertices, 200);
        assert_eq!(s.reused_vertex_fraction(), 0.375);
    }
}
