//! The background refresh worker pool of the [`StreamHub`].
//!
//! A refresh is double-buffered: the hub snapshots the merged matrix
//! `A₀ + ΔA`, ships it here with the [`RefreshTicket`] from
//! [`Engine::prepare_refresh`], and keeps serving the *old* binding plus
//! the delta overlay while a worker thread decomposes the snapshot.
//! When the ticket carries the prior decomposition and the touched set
//! ([`Engine::prepare_refresh_localized`]), the worker splices via
//! [`arrow_core::incremental::decompose_snapshot_incremental`] —
//! re-arranging only the delta's affected region — and falls back to a
//! cold LA-Decompose per the ticket's policy. The finished decomposition
//! (plus the incremental-vs-fallback outcome and the measured decompose
//! latency) travels back over a channel; the hub commits the swap at its
//! next poll point via [`Engine::commit_refresh`].
//!
//! Workers are plain `std::thread`s talking over `crossbeam-channel`
//! MPMC endpoints: one shared job queue (so the pool size is exactly the
//! hub's shared refresh budget) and one shared completion queue the hub
//! drains without blocking.
//!
//! ## Supervision
//!
//! Each job runs under `catch_unwind`. A panicking worker (the
//! `worker.decompose.panic` chaos failpoint, or a real decompose bug)
//! reports its death as a [`RefreshDone`] with `panicked = true` —
//! carrying the snapshot and ticket back so nothing is lost — *before*
//! its thread exits. The hub then [`respawn_one`]s a replacement and
//! requeues the dead grant, so a worker death never loses a refresh and
//! never shrinks the pool. The send-before-exit ordering is what makes
//! [`wait_done`] safe: any in-flight job is observable on the
//! completion queue even if its worker is already gone.
//!
//! [`StreamHub`]: crate::StreamHub
//! [`Engine::prepare_refresh`]: amd_engine::Engine::prepare_refresh
//! [`Engine::prepare_refresh_localized`]: amd_engine::Engine::prepare_refresh_localized
//! [`Engine::commit_refresh`]: amd_engine::Engine::commit_refresh
//! [`respawn_one`]: RefreshWorker::respawn_one
//! [`wait_done`]: RefreshWorker::wait_done

use crate::hub::TenantId;
use amd_chaos::failpoint;
use amd_engine::RefreshTicket;
use amd_obs::{SpanId, Stopwatch, Tracer};
use amd_sparse::{CsrMatrix, SparseError, SparseResult};
use arrow_core::incremental::{decompose_snapshot_incremental, RefreshOutcome};
use arrow_core::ArrowDecomposition;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::Duration;

/// One decompose job: everything a worker needs, nothing borrowed.
pub(crate) struct RefreshJob {
    pub tenant: TenantId,
    /// The merged snapshot `A₀ + ΔA` captured at launch.
    pub merged: CsrMatrix<f64>,
    /// Engine-issued identity + decompose parameters for the commit.
    pub ticket: RefreshTicket,
    /// Sleep before decomposing: the test/bench hook for simulating a
    /// slow LA-Decompose, and the supervisor's retry backoff.
    pub delay: Option<Duration>,
    /// The hub-opened "decompose" trace span; the worker thread closes
    /// it when the decompose finishes.
    pub span: SpanId,
}

/// A finished job: the snapshot and ticket ride along so the hub can
/// commit without having kept its own copy.
pub(crate) struct RefreshDone {
    pub tenant: TenantId,
    pub merged: CsrMatrix<f64>,
    pub ticket: RefreshTicket,
    pub result: SparseResult<ArrowDecomposition>,
    /// What the decompose did (incremental vs fallback, region size);
    /// `None` when it errored out.
    pub outcome: Option<RefreshOutcome>,
    /// Wall-clock seconds of the decompose itself (excluding the
    /// test-hook delay) — the adaptive budget's latency signal.
    pub decompose_seconds: f64,
    /// The worker thread died producing this: `result` is the panic
    /// message and the thread is gone. The hub must respawn a
    /// replacement and requeue (or sync-fallback) the grant.
    pub panicked: bool,
}

/// A pool of decompose threads behind a shared job queue, supervised by
/// the hub: dead workers are reported (see [`RefreshDone::panicked`])
/// and replaced via [`respawn_one`](Self::respawn_one).
pub(crate) struct RefreshWorker {
    jobs: Option<Sender<RefreshJob>>,
    /// Kept for respawns: replacement threads subscribe to the same
    /// shared job queue.
    jobs_rx: Receiver<RefreshJob>,
    done: Receiver<RefreshDone>,
    /// Kept for respawns. Consequence: the completion channel never
    /// closes from the sender side, so [`wait_done`](Self::wait_done)
    /// detects a dead pool by thread liveness instead.
    done_tx: Sender<RefreshDone>,
    tracer: Tracer,
    /// Configured pool size — [`respawn_one`](Self::respawn_one)
    /// restores the thread count to exactly this.
    size: usize,
    threads: Vec<JoinHandle<()>>,
}

impl RefreshWorker {
    /// Spawns `threads` decompose workers (at least one). Each closes
    /// the hub-opened "decompose" span of the jobs it runs via
    /// `tracer`, so the refresh span tree records the off-thread work.
    pub fn spawn(threads: usize, tracer: Tracer) -> Self {
        let (jobs_tx, jobs_rx) = unbounded::<RefreshJob>();
        let (done_tx, done_rx) = unbounded::<RefreshDone>();
        let mut pool = Self {
            jobs: Some(jobs_tx),
            jobs_rx,
            done: done_rx,
            done_tx,
            tracer,
            size: threads.max(1),
            threads: Vec::new(),
        };
        for _ in 0..pool.size {
            pool.spawn_thread();
        }
        pool
    }

    fn spawn_thread(&mut self) {
        let rx = self.jobs_rx.clone();
        let tx = self.done_tx.clone();
        let tracer = self.tracer.clone();
        self.threads.push(std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                let RefreshJob {
                    tenant,
                    merged,
                    ticket,
                    delay,
                    span,
                } = job;
                if let Some(delay) = delay {
                    std::thread::sleep(delay);
                }
                // The single decompose measurement: both the adaptive
                // budget and the latency histograms read this value off
                // RefreshDone.
                let sw = Stopwatch::start();
                // `catch_unwind` so a panicking decompose (injected by
                // the chaos failpoint, or a real bug) reports its death
                // instead of silently shrinking the pool. The closure
                // only borrows, so the snapshot and ticket survive the
                // unwind and ride back to the hub for the retry.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    failpoint::check(failpoint::WORKER_DECOMPOSE_PANIC)?;
                    failpoint::check(failpoint::WORKER_DECOMPOSE_DELAY)?;
                    decompose_snapshot_incremental(
                        &merged,
                        &ticket.config,
                        ticket.seed,
                        ticket.prior.as_deref(),
                        ticket.touched.as_deref(),
                        &ticket.incremental,
                    )
                }));
                let decompose_seconds = sw.elapsed_seconds();
                match attempt {
                    Ok(result) => {
                        let (result, outcome) = match result {
                            Ok((d, o)) => (Ok(d), Some(o)),
                            Err(e) => (Err(e), None),
                        };
                        tracer.end_with(
                            span,
                            match &outcome {
                                Some(o) if o.incremental => {
                                    format!("incremental affected={}", o.affected_vertices)
                                }
                                Some(_) => "cold fallback".to_string(),
                                None => "decompose error".to_string(),
                            },
                        );
                        let _ = tx.send(RefreshDone {
                            tenant,
                            merged,
                            ticket,
                            result,
                            outcome,
                            decompose_seconds,
                            panicked: false,
                        });
                    }
                    Err(payload) => {
                        // This thread is dying. Report the death FIRST
                        // (the hub's supervision depends on the done
                        // message preceding the exit), then leave the
                        // unwound stack behind for good.
                        let msg = panic_message(payload.as_ref());
                        tracer.end_with(span, format!("worker panic: {msg}"));
                        let _ = tx.send(RefreshDone {
                            tenant,
                            merged,
                            ticket,
                            result: Err(SparseError::InvalidCsr(format!(
                                "refresh worker panicked: {msg}"
                            ))),
                            outcome: None,
                            decompose_seconds,
                            panicked: true,
                        });
                        return;
                    }
                }
            }
        }));
    }

    /// Replaces dead threads so the pool is back at its configured
    /// size. Called by the hub when it observes a `panicked` done.
    pub fn respawn_one(&mut self) {
        self.threads.retain(|t| !t.is_finished());
        // The worker that reported this death sends its done *before*
        // it exits, so `is_finished` can still say alive here; counting
        // it would skip the replacement and leave the requeued grant in
        // a queue nobody drains. One death reported, one thread spawned
        // — unconditionally. (A momentary surplus just parks on the job
        // queue and is reaped by the next retain.)
        self.spawn_thread();
        while self.threads.len() < self.size {
            self.spawn_thread();
        }
    }

    /// Enqueues a job (never blocks — the queue is unbounded; the hub's
    /// fairness policy bounds how many are outstanding).
    pub fn submit(&self, job: RefreshJob) {
        if let Some(jobs) = &self.jobs {
            let _ = jobs.send(job);
        }
    }

    /// A completed job, if one is ready (non-blocking).
    pub fn try_done(&self) -> Option<RefreshDone> {
        self.done.try_recv()
    }

    /// Blocks until a job completes. `None` only when nothing can ever
    /// complete: every worker thread is gone *and* the completion queue
    /// is empty. That state is unreachable while the hub keeps its
    /// supervision invariant (respawn on every `panicked` done), because
    /// a dying worker always sends its done before exiting — the check
    /// is the backstop that turns an invariant violation into a clean
    /// `None` instead of a deadlock.
    pub fn wait_done(&self) -> Option<RefreshDone> {
        loop {
            if let Some(done) = self.done.try_recv() {
                return Some(done);
            }
            if self.threads.iter().all(|t| t.is_finished()) {
                // One final poll closes the race where the last
                // worker sent its done after the try_recv above.
                return self.done.try_recv();
            }
            // Bounded wait, then re-check liveness: a thread observed
            // alive above may have been mid-exit (it sends its done
            // before dying), and a one-shot check followed by a plain
            // blocking recv would sleep forever on that window.
            match self.done.recv_timeout(Duration::from_millis(50)) {
                Ok(done) => return Some(done),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// format string yields `String`; a literal yields `&str`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic payload>")
}

impl Drop for RefreshWorker {
    fn drop(&mut self) {
        // Closing the job queue lets every worker drain and exit.
        self.jobs = None;
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
