//! The background refresh worker pool of the [`StreamHub`].
//!
//! A refresh is double-buffered: the hub snapshots the merged matrix
//! `A₀ + ΔA`, ships it here with the [`RefreshTicket`] from
//! [`Engine::prepare_refresh`], and keeps serving the *old* binding plus
//! the delta overlay while a worker thread decomposes the snapshot.
//! When the ticket carries the prior decomposition and the touched set
//! ([`Engine::prepare_refresh_localized`]), the worker splices via
//! [`arrow_core::incremental::decompose_snapshot_incremental`] —
//! re-arranging only the delta's affected region — and falls back to a
//! cold LA-Decompose per the ticket's policy. The finished decomposition
//! (plus the incremental-vs-fallback outcome and the measured decompose
//! latency) travels back over a channel; the hub commits the swap at its
//! next poll point via [`Engine::commit_refresh`].
//!
//! Workers are plain `std::thread`s talking over `crossbeam-channel`
//! MPMC endpoints: one shared job queue (so the pool size is exactly the
//! hub's shared refresh budget) and one shared completion queue the hub
//! drains without blocking.
//!
//! [`StreamHub`]: crate::StreamHub
//! [`Engine::prepare_refresh`]: amd_engine::Engine::prepare_refresh
//! [`Engine::prepare_refresh_localized`]: amd_engine::Engine::prepare_refresh_localized
//! [`Engine::commit_refresh`]: amd_engine::Engine::commit_refresh

use crate::hub::TenantId;
use amd_engine::RefreshTicket;
use amd_obs::{SpanId, Stopwatch, Tracer};
use amd_sparse::{CsrMatrix, SparseResult};
use arrow_core::incremental::{decompose_snapshot_incremental, RefreshOutcome};
use arrow_core::ArrowDecomposition;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// One decompose job: everything a worker needs, nothing borrowed.
pub(crate) struct RefreshJob {
    pub tenant: TenantId,
    /// The merged snapshot `A₀ + ΔA` captured at launch.
    pub merged: CsrMatrix<f64>,
    /// Engine-issued identity + decompose parameters for the commit.
    pub ticket: RefreshTicket,
    /// Test/bench hook: sleep before decomposing (simulates a slow
    /// LA-Decompose so serving-during-rebuild can be asserted).
    pub delay: Option<Duration>,
    /// The hub-opened "decompose" trace span; the worker thread closes
    /// it when the decompose finishes.
    pub span: SpanId,
}

/// A finished job: the snapshot and ticket ride along so the hub can
/// commit without having kept its own copy.
pub(crate) struct RefreshDone {
    pub tenant: TenantId,
    pub merged: CsrMatrix<f64>,
    pub ticket: RefreshTicket,
    pub result: SparseResult<ArrowDecomposition>,
    /// What the decompose did (incremental vs fallback, region size);
    /// `None` when it errored out.
    pub outcome: Option<RefreshOutcome>,
    /// Wall-clock seconds of the decompose itself (excluding the
    /// test-hook delay) — the adaptive budget's latency signal.
    pub decompose_seconds: f64,
}

/// A pool of decompose threads behind a shared job queue.
pub(crate) struct RefreshWorker {
    jobs: Option<Sender<RefreshJob>>,
    done: Receiver<RefreshDone>,
    threads: Vec<JoinHandle<()>>,
}

impl RefreshWorker {
    /// Spawns `threads` decompose workers (at least one). Each closes
    /// the hub-opened "decompose" span of the jobs it runs via
    /// `tracer`, so the refresh span tree records the off-thread work.
    pub fn spawn(threads: usize, tracer: Tracer) -> Self {
        let (jobs_tx, jobs_rx) = unbounded::<RefreshJob>();
        let (done_tx, done_rx) = unbounded::<RefreshDone>();
        let threads = (0..threads.max(1))
            .map(|_| {
                let rx = jobs_rx.clone();
                let tx = done_tx.clone();
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        if let Some(delay) = job.delay {
                            std::thread::sleep(delay);
                        }
                        // The single decompose measurement: both the
                        // adaptive budget and the latency histograms
                        // read this value off RefreshDone.
                        let sw = Stopwatch::start();
                        let (result, outcome) = match decompose_snapshot_incremental(
                            &job.merged,
                            &job.ticket.config,
                            job.ticket.seed,
                            job.ticket.prior.as_deref(),
                            job.ticket.touched.as_deref(),
                            &job.ticket.incremental,
                        ) {
                            Ok((d, o)) => (Ok(d), Some(o)),
                            Err(e) => (Err(e), None),
                        };
                        let decompose_seconds = sw.elapsed_seconds();
                        tracer.end_with(
                            job.span,
                            match &outcome {
                                Some(o) if o.incremental => {
                                    format!("incremental affected={}", o.affected_vertices)
                                }
                                Some(_) => "cold fallback".to_string(),
                                None => "decompose error".to_string(),
                            },
                        );
                        let _ = tx.send(RefreshDone {
                            tenant: job.tenant,
                            merged: job.merged,
                            ticket: job.ticket,
                            result,
                            outcome,
                            decompose_seconds,
                        });
                    }
                })
            })
            .collect();
        Self {
            jobs: Some(jobs_tx),
            done: done_rx,
            threads,
        }
    }

    /// Enqueues a job (never blocks — the queue is unbounded; the hub's
    /// fairness policy bounds how many are outstanding).
    pub fn submit(&self, job: RefreshJob) {
        if let Some(jobs) = &self.jobs {
            let _ = jobs.send(job);
        }
    }

    /// A completed job, if one is ready (non-blocking).
    pub fn try_done(&self) -> Option<RefreshDone> {
        self.done.try_recv()
    }

    /// Blocks until a job completes. `None` only if every worker thread
    /// is gone (a worker panicked — a bug, not a load condition).
    pub fn wait_done(&self) -> Option<RefreshDone> {
        self.done.recv().ok()
    }
}

impl Drop for RefreshWorker {
    fn drop(&mut self) {
        // Closing the job queue lets every worker drain and exit.
        self.jobs = None;
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
