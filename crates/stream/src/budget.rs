//! The staleness budget: when is a pending delta "too big"?
//!
//! The corrected multiply path pays per iteration for every pending delta
//! entry (broadcast bytes plus replicated correction flops — see
//! [`amd_spmm::DeltaSpmm`]), while a refresh pays a one-off LA-Decompose
//! of the merged matrix. The budget draws the line between the two: it
//! bounds how much delta may accumulate before the holder must compact.

/// Limits on the pending delta of a dynamic matrix. A budget is
/// *exceeded* as soon as **any** configured limit is crossed; every limit
/// defaults to "unbounded" so callers opt into exactly the signals they
/// care about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessBudget {
    /// Largest number of distinct delta positions tolerated.
    pub max_delta_nnz: usize,
    /// Largest tolerated ratio `nnz(ΔA) / max(nnz(A₀), 1)`. This is the
    /// natural knob: it tracks the relative overhead of the corrected
    /// multiply, which scales with exactly this ratio.
    pub max_delta_fraction: f64,
    /// Largest tolerated absolute delta mass `Σ |δ|` (numerical drift
    /// guard for weight-update-heavy streams).
    pub max_delta_mass: f64,
}

impl Default for StalenessBudget {
    /// Unbounded: never forces a refresh.
    fn default() -> Self {
        Self {
            max_delta_nnz: usize::MAX,
            max_delta_fraction: f64::INFINITY,
            max_delta_mass: f64::INFINITY,
        }
    }
}

impl StalenessBudget {
    /// A budget bounding only the delta/base nnz ratio — the recommended
    /// configuration (e.g. `0.1` refreshes once the delta reaches 10% of
    /// the base structure).
    pub fn nnz_fraction(fraction: f64) -> Self {
        Self {
            max_delta_fraction: fraction,
            ..Self::default()
        }
    }

    /// A budget bounding only the absolute number of delta entries.
    pub fn nnz_cap(cap: usize) -> Self {
        Self {
            max_delta_nnz: cap,
            ..Self::default()
        }
    }

    /// `true` once the pending delta crosses any configured limit.
    pub fn exceeded(&self, delta_nnz: usize, delta_mass: f64, base_nnz: usize) -> bool {
        delta_nnz > self.max_delta_nnz
            || delta_nnz as f64 > self.max_delta_fraction * base_nnz.max(1) as f64
            || delta_mass > self.max_delta_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded() {
        let b = StalenessBudget::default();
        assert!(!b.exceeded(usize::MAX / 2, 1e300, 0));
    }

    #[test]
    fn fraction_budget_trips_relative_to_base() {
        let b = StalenessBudget::nnz_fraction(0.1);
        assert!(!b.exceeded(10, 0.0, 100));
        assert!(b.exceeded(11, 0.0, 100));
        // An empty base counts as one entry, so any delta trips.
        assert!(b.exceeded(1, 0.0, 0));
    }

    #[test]
    fn nnz_cap_trips_absolutely() {
        let b = StalenessBudget::nnz_cap(3);
        assert!(!b.exceeded(3, 0.0, 1_000_000));
        assert!(b.exceeded(4, 0.0, 1_000_000));
    }

    #[test]
    fn mass_budget_trips_on_drift() {
        let b = StalenessBudget {
            max_delta_mass: 5.0,
            ..StalenessBudget::default()
        };
        assert!(!b.exceeded(1, 5.0, 10));
        assert!(b.exceeded(1, 5.5, 10));
    }
}
