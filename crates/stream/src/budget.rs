//! The staleness budget: when is a pending delta "too big"?
//!
//! The corrected multiply path pays per iteration for every pending delta
//! entry (broadcast bytes plus replicated correction flops — see
//! [`amd_spmm::DeltaSpmm`]), while a refresh pays a one-off LA-Decompose
//! of the merged matrix. The budget draws the line between the two: it
//! bounds how much delta may accumulate before the holder must compact.

/// Limits on the pending delta of a dynamic matrix. A budget is
/// *exceeded* as soon as **any** configured limit is crossed; every limit
/// defaults to "unbounded" so callers opt into exactly the signals they
/// care about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessBudget {
    /// Largest number of distinct delta positions tolerated.
    pub max_delta_nnz: usize,
    /// Largest tolerated ratio `nnz(ΔA) / max(nnz(A₀), 1)`. This is the
    /// natural knob: it tracks the relative overhead of the corrected
    /// multiply, which scales with exactly this ratio.
    pub max_delta_fraction: f64,
    /// Largest tolerated absolute delta mass `Σ |δ|` (numerical drift
    /// guard for weight-update-heavy streams).
    pub max_delta_mass: f64,
}

impl Default for StalenessBudget {
    /// Unbounded: never forces a refresh.
    fn default() -> Self {
        Self {
            max_delta_nnz: usize::MAX,
            max_delta_fraction: f64::INFINITY,
            max_delta_mass: f64::INFINITY,
        }
    }
}

impl StalenessBudget {
    /// A budget bounding only the delta/base nnz ratio — the recommended
    /// configuration (e.g. `0.1` refreshes once the delta reaches 10% of
    /// the base structure).
    pub fn nnz_fraction(fraction: f64) -> Self {
        Self {
            max_delta_fraction: fraction,
            ..Self::default()
        }
    }

    /// A budget bounding only the absolute number of delta entries.
    pub fn nnz_cap(cap: usize) -> Self {
        Self {
            max_delta_nnz: cap,
            ..Self::default()
        }
    }

    /// `true` once the pending delta crosses any configured limit.
    pub fn exceeded(&self, delta_nnz: usize, delta_mass: f64, base_nnz: usize) -> bool {
        delta_nnz > self.max_delta_nnz
            || delta_nnz as f64 > self.max_delta_fraction * base_nnz.max(1) as f64
            || delta_mass > self.max_delta_mass
    }
}

/// Derives a [`StalenessBudget`] from measured refresh cost instead of a
/// fixed fraction.
///
/// The budget's job is to balance two costs: every pending delta entry
/// taxes each query through the corrected path (a predictable,
/// per-entry overhead), while a refresh pays one decompose. The adaptive
/// rule sizes `max_delta_nnz` so the accumulated correction overhead a
/// refresh *avoids* is about `headroom ×` the refresh's own latency:
///
/// ```text
/// max_delta_nnz ≈ headroom · refresh_seconds / per_entry_seconds
/// ```
///
/// Incremental re-decomposition makes refreshes cheap exactly when the
/// delta is local, so a stream that stays local sees its budget
/// *tighten* automatically (cheap refreshes are worth taking early),
/// while a stream that keeps forcing cold rebuilds sees it relax.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveBudget {
    /// How many refresh-latencies' worth of predicted correction
    /// overhead to tolerate before compacting.
    pub headroom: f64,
    /// Never derive a budget below this (guards against refresh storms
    /// when a refresh is nearly free).
    pub min_nnz: usize,
    /// Never derive a budget above this (guards against an unbounded
    /// delta when the correction overhead is predicted to be ~0).
    pub max_nnz: usize,
}

impl Default for AdaptiveBudget {
    fn default() -> Self {
        Self {
            headroom: 1.0,
            min_nnz: 16,
            max_nnz: 1 << 20,
        }
    }
}

impl AdaptiveBudget {
    /// The delta-entry cap implied by a refresh that took
    /// `refresh_seconds` against a corrected path predicted to cost
    /// `per_entry_seconds` per pending entry per query.
    pub fn derive_nnz(&self, refresh_seconds: f64, per_entry_seconds: f64) -> usize {
        if !refresh_seconds.is_finite()
            || !per_entry_seconds.is_finite()
            || per_entry_seconds <= 0.0
        {
            return self.max_nnz;
        }
        let raw = self.headroom * refresh_seconds / per_entry_seconds;
        if !raw.is_finite() {
            return self.max_nnz;
        }
        (raw as usize).clamp(self.min_nnz, self.max_nnz)
    }

    /// Re-derives a budget in place: only `max_delta_nnz` moves, the
    /// other limits stay whatever the holder configured.
    pub fn retune(
        &self,
        budget: &mut StalenessBudget,
        refresh_seconds: f64,
        per_entry_seconds: f64,
    ) -> usize {
        let nnz = self.derive_nnz(refresh_seconds, per_entry_seconds);
        budget.max_delta_nnz = nnz;
        nnz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_budget_tightens_with_cheap_refreshes() {
        let pol = AdaptiveBudget::default();
        // A 1 ms refresh vs 1 µs/entry overhead → 1000-entry budget.
        assert_eq!(pol.derive_nnz(1e-3, 1e-6), 1000);
        // A 100× cheaper (incremental) refresh tightens it 100×, down to
        // the floor.
        assert_eq!(pol.derive_nnz(1e-5, 1e-6), pol.min_nnz);
        // Zero/undefined overhead relaxes to the ceiling.
        assert_eq!(pol.derive_nnz(1e-3, 0.0), pol.max_nnz);
        assert_eq!(pol.derive_nnz(f64::INFINITY, 1e-6), pol.max_nnz);
        let mut b = StalenessBudget::default();
        assert_eq!(pol.retune(&mut b, 1e-3, 1e-6), 1000);
        assert_eq!(b.max_delta_nnz, 1000);
        assert!(b.max_delta_fraction.is_infinite(), "other limits untouched");
    }

    #[test]
    fn default_is_unbounded() {
        let b = StalenessBudget::default();
        assert!(!b.exceeded(usize::MAX / 2, 1e300, 0));
    }

    #[test]
    fn fraction_budget_trips_relative_to_base() {
        let b = StalenessBudget::nnz_fraction(0.1);
        assert!(!b.exceeded(10, 0.0, 100));
        assert!(b.exceeded(11, 0.0, 100));
        // An empty base counts as one entry, so any delta trips.
        assert!(b.exceeded(1, 0.0, 0));
    }

    #[test]
    fn nnz_cap_trips_absolutely() {
        let b = StalenessBudget::nnz_cap(3);
        assert!(!b.exceeded(3, 0.0, 1_000_000));
        assert!(b.exceeded(4, 0.0, 1_000_000));
    }

    #[test]
    fn mass_budget_trips_on_drift() {
        let b = StalenessBudget {
            max_delta_mass: 5.0,
            ..StalenessBudget::default()
        };
        assert!(!b.exceeded(1, 5.0, 10));
        assert!(b.exceeded(1, 5.5, 10));
    }
}
