//! Worker supervision under injected panics.
//!
//! These tests arm the `worker.decompose.panic` failpoint so the
//! refresh worker dies mid-decompose, then assert the hub's
//! supervision protocol: the worker is respawned, the captured delta
//! is restored and the grant requeued (with bounded retries before a
//! counted synchronous fallback), and serving stays bit-exact through
//! every death. Lives in its own integration-test binary so the
//! process-wide failpoint table is not shared with unrelated tests.

use amd_chaos::{failpoint, FaultPlan};
use amd_engine::EngineConfig;
use amd_graph::generators::basic;
use amd_sparse::{ops, CooMatrix, CsrMatrix, DenseMatrix};
use amd_spmm::reference::iterated_spmm;
use amd_stream::{HubConfig, StalenessBudget, StreamHub, Update};

fn ring(n: u32) -> CsrMatrix<f64> {
    basic::cycle(n).to_adjacency()
}

fn config() -> HubConfig {
    HubConfig {
        engine: EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            ..EngineConfig::default()
        },
        // Never auto-trip: refreshes are driven explicitly.
        budget: StalenessBudget::nnz_fraction(1e9),
        auto_refresh: false,
        async_refresh: true,
        ..HubConfig::default()
    }
}

fn column(n: u32, salt: u32) -> Vec<f64> {
    (0..n)
        .map(|r| (((salt + 3 * r) % 9) as f64) - 4.0)
        .collect()
}

/// Applies an integer update to both the hub tenant and a truth mirror.
fn apply(
    hub: &mut StreamHub,
    t: amd_stream::TenantId,
    truth: &mut CsrMatrix<f64>,
    n: u32,
    u: u32,
    v: u32,
) {
    let mut patch = CooMatrix::new(n, n);
    patch.push(u, v, 1.0).unwrap();
    *truth = ops::apply_delta(truth, &patch.to_csr()).unwrap();
    hub.update(
        t,
        Update::Add {
            row: u,
            col: v,
            delta: 1.0,
        },
    )
    .unwrap();
}

fn assert_exact(hub: &mut StreamHub, t: amd_stream::TenantId, truth: &CsrMatrix<f64>, salt: u32) {
    let n = truth.rows();
    let x = column(n, salt);
    let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
    let got = hub.run_single(t, x, 2, None).unwrap();
    assert_eq!(
        got.y,
        iterated_spmm(truth, &xm, 2).unwrap().data(),
        "serving must stay bit-exact (salt {salt})"
    );
}

/// One injected worker death: the supervisor respawns the worker,
/// requeues the captured delta, and the retried refresh commits. The
/// answer stream is bit-exact before, during, and after the death.
#[test]
fn worker_panic_is_supervised_and_serving_stays_exact() {
    failpoint::quiet_injected_panics();
    let n = 40;
    let mut hub = StreamHub::new(config()).unwrap();
    let t = hub.admit(ring(n)).unwrap();
    let mut truth = ring(n);
    for i in 0..4u32 {
        apply(&mut hub, t, &mut truth, n, i, (i + n / 2) % n);
    }
    assert_exact(&mut hub, t, &truth, 1);

    let plan = FaultPlan::worker_kill(23);
    let _guard = plan.arm();
    assert!(hub.refresh(t).unwrap(), "refresh must launch");
    // Serving while the doomed rebuild (and its retry) is in flight.
    assert_exact(&mut hub, t, &truth, 2);
    assert_eq!(hub.wait_refreshes().unwrap(), 1, "the retry must commit");
    drop(_guard);

    let stats = hub.stats();
    assert_eq!(stats.worker_restarts, 1, "one death, one respawn");
    assert_eq!(stats.refresh_retries, 1, "one requeue");
    assert_eq!(stats.sync_fallbacks, 0, "retry succeeded, no fallback");
    assert_eq!(stats.refreshes_completed, 1);
    assert_eq!(hub.version(t).unwrap(), 1, "the swap committed");
    assert_eq!(hub.delta_nnz(t).unwrap(), 0, "the delta drained");
    assert_exact(&mut hub, t, &truth, 3);
}

/// Every async attempt dies: after `max_refresh_retries` requeues the
/// hub falls back to a counted synchronous refresh, which bypasses the
/// worker failpoint and commits. Serving is still bit-exact.
#[test]
fn exhausted_retries_fall_back_to_sync_refresh() {
    failpoint::quiet_injected_panics();
    let n = 36;
    let mut cfg = config();
    cfg.max_refresh_retries = 2;
    let mut hub = StreamHub::new(cfg).unwrap();
    let t = hub.admit(ring(n)).unwrap();
    let mut truth = ring(n);
    for i in 0..3u32 {
        apply(&mut hub, t, &mut truth, n, i, i + 10);
    }

    let plan = FaultPlan::worker_kill_always(29);
    let _guard = plan.arm();
    assert!(hub.refresh(t).unwrap());
    assert_eq!(
        hub.wait_refreshes().unwrap(),
        1,
        "the sync fallback must commit the refresh"
    );
    drop(_guard);

    let stats = hub.stats();
    // Initial launch + 2 retries all die before the fallback.
    assert_eq!(stats.worker_restarts, 3, "every death respawns the worker");
    assert_eq!(stats.refresh_retries, 2, "bounded by max_refresh_retries");
    assert_eq!(stats.sync_fallbacks, 1, "then the hub refreshes inline");
    assert_eq!(stats.refreshes_completed, 1);
    assert_eq!(hub.version(t).unwrap(), 1);
    assert_eq!(hub.delta_nnz(t).unwrap(), 0);
    assert_exact(&mut hub, t, &truth, 5);
}
