//! Separator-LA (§5.2): recursive separator-based linear arrangements.
//!
//! `Separator-LA(G)`:
//! 1. compute a 2/3-separator `S` of the current subgraph,
//! 2. place the vertices of `S` at the beginning of the linear order,
//! 3. place the connected components that remain after removing `S` in
//!    increasing size order, recursing into each.
//!
//! Lemma 2 bounds the resulting cost by `O(n Δ s(G) log n)`, dropping the
//! `log n` when the separation number grows polynomially.

use amd_graph::separator::SeparatorFinder;
use amd_graph::traversal::bfs_filtered;
use amd_graph::Graph;
use amd_sparse::Permutation;

/// Computes a Separator-LA arrangement of `g` with the given separator
/// strategy. Components of the input graph are laid out in decreasing size
/// order (largest first), then each is arranged recursively.
pub fn separator_la<F: SeparatorFinder>(g: &Graph, finder: &F) -> Permutation {
    let n = g.n();
    let mut order: Vec<u32> = Vec::with_capacity(n as usize);
    let mut alive = vec![true; n as usize];

    // Top-level components, largest first (matches the forest layout rule
    // of §5.3 step 3).
    let comps = amd_graph::traversal::connected_components(g);
    let mut groups = comps.groups();
    groups.sort_by_key(|grp| std::cmp::Reverse(grp.len()));

    // Explicit work stack of vertex sets to arrange: entries are processed
    // LIFO, so we push in reverse of the desired output order.
    let mut work: Vec<Vec<u32>> = Vec::new();
    for grp in groups.into_iter().rev() {
        work.push(grp);
    }
    while let Some(component) = work.pop() {
        debug_assert!(!component.is_empty());
        if component.len() <= 2 {
            order.extend_from_slice(&component);
            for &v in &component {
                alive[v as usize] = false;
            }
            continue;
        }
        let sep = finder.find(g, &component);
        debug_assert!(!sep.is_empty(), "separator must be non-empty");
        for &s in &sep {
            alive[s as usize] = false;
            order.push(s);
        }
        // Components of component \ sep, by BFS over alive vertices.
        let mut remaining: Vec<bool> = vec![false; g.n() as usize];
        let mut count = 0usize;
        for &v in &component {
            if alive[v as usize] {
                remaining[v as usize] = true;
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        let mut sub_components: Vec<Vec<u32>> = Vec::new();
        for &v in &component {
            if remaining[v as usize] {
                let res = bfs_filtered(g, v, |u| remaining[u as usize]);
                for &u in &res.order {
                    remaining[u as usize] = false;
                }
                sub_components.push(res.order);
            }
        }
        // Increasing size order: the smallest component is laid out first,
        // so push largest-first onto the LIFO stack.
        sub_components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        for c in sub_components {
            work.push(c);
        }
    }
    debug_assert_eq!(order.len(), n as usize);
    Permutation::from_order(order).expect("separator LA visits each vertex exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::{la_bandwidth, la_cost};
    use amd_graph::generators::{basic, random};
    use amd_graph::separator::{BfsLevelSeparator, CentroidSeparator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn covers_all_vertices_once() {
        let g = basic::grid_2d(6, 6);
        let pi = separator_la(&g, &BfsLevelSeparator);
        assert_eq!(pi.len(), 36);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (3, 4)]);
        let pi = separator_la(&g, &BfsLevelSeparator);
        assert_eq!(pi.len(), 7);
        // Largest component first: one of {0,1,2} occupies position 0.
        assert!(pi.vertex_at(0) <= 2);
    }

    #[test]
    fn binary_tree_cost_near_lemma2_bound() {
        // Lemma 2 for trees (s(G)=1, Δ=3): cost O(n Δ log n).
        let n = 255u32;
        let g = basic::complete_ary_tree(2, n);
        let pi = separator_la(&g, &CentroidSeparator);
        let cost = la_cost(&g, &pi);
        let bound = 4.0 * (n as f64) * 3.0 * (n as f64).log2();
        assert!(
            (cost as f64) < bound,
            "cost {cost} exceeds Lemma 2 style bound {bound}"
        );
    }

    #[test]
    fn grid_cost_beats_random_order() {
        let g = basic::grid_2d(12, 12);
        let pi = separator_la(&g, &BfsLevelSeparator);
        let cost = la_cost(&g, &pi);
        // Random order on a grid has expected edge length Θ(n); the
        // separator layout must be far better.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        use rand::seq::SliceRandom;
        let mut rnd: Vec<u32> = (0..144).collect();
        rnd.shuffle(&mut rng);
        let rnd_pi = Permutation::from_order(rnd).unwrap();
        let rnd_cost = la_cost(&g, &rnd_pi);
        assert!(cost * 2 < rnd_cost, "separator {cost} vs random {rnd_cost}");
    }

    #[test]
    fn random_tree_bandwidth_reasonable() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random::random_tree(200, &mut rng);
        let pi = separator_la(&g, &CentroidSeparator);
        // Bandwidth can be Θ(n / log n) for trees; just verify the cost
        // tracks the O(nΔ log n) shape rather than Θ(n²).
        let cost = la_cost(&g, &pi);
        let delta = g.max_degree() as u64;
        let bound = 8 * 200u64 * delta * 8; // 8 ≈ log2(200)
        assert!(cost < bound, "cost {cost} vs bound {bound}");
        let _ = la_bandwidth(&g, &pi);
    }

    #[test]
    fn tiny_graphs() {
        let g = Graph::empty(1);
        let pi = separator_la(&g, &BfsLevelSeparator);
        assert_eq!(pi.len(), 1);
        let g2 = Graph::from_edges(2, &[(0, 1)]);
        let pi2 = separator_la(&g2, &CentroidSeparator);
        assert_eq!(pi2.len(), 2);
    }
}
