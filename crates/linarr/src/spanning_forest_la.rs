//! Linear arrangements from random spanning forests (§5.3).
//!
//! The paper's production heuristic for graphs with hundreds of millions
//! of vertices:
//!
//! 1. draw i.i.d. uniform edge weights,
//! 2. compute a minimum spanning forest,
//! 3. lay out each tree with the smallest-first order (§5.4), trees in
//!    decreasing size order, and concatenate.
//!
//! Runs in (near) linear time and is what the evaluation uses to decompose
//! the SuiteSparse datasets.

use crate::tree_layout::smallest_first_order;
use amd_graph::mst::{random_spanning_forest, SpanningForest};
use amd_graph::Graph;
use amd_sparse::Permutation;
use rand::Rng;

/// Computes the random spanning forest arrangement of `g`.
pub fn spanning_forest_la<R: Rng>(g: &Graph, rng: &mut R) -> Permutation {
    let forest = random_spanning_forest(g, rng);
    arrangement_of_forest(&forest)
}

/// Lays out a given forest: trees in decreasing size order, each in
/// smallest-first order.
pub fn arrangement_of_forest(forest: &SpanningForest) -> Permutation {
    let sizes = forest.subtree_sizes();
    let mut ordered = forest.clone();
    ordered
        .roots
        .sort_unstable_by_key(|&r| (std::cmp::Reverse(sizes[r as usize]), r));
    let order = smallest_first_order(&ordered);
    Permutation::from_order(order).expect("forest layout covers each vertex once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::{avg_edge_length, la_cost};
    use amd_graph::generators::{basic, datasets, random};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn covers_vertices_and_orders_trees_by_size() {
        // Components of size 3 and 2 plus an isolated vertex.
        let g = Graph::from_edges(6, &[(3, 4), (0, 1), (1, 2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pi = spanning_forest_la(&g, &mut rng);
        assert_eq!(pi.len(), 6);
        // Positions 0..3 hold the size-3 component {0,1,2}.
        let first: Vec<u32> = (0..3).map(|p| pi.vertex_at(p)).collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        // Isolated vertex 5 is last.
        assert_eq!(pi.vertex_at(5), 5);
    }

    #[test]
    fn tree_input_reduces_to_smallest_first() {
        let g = basic::path(64);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pi = spanning_forest_la(&g, &mut rng);
        // A path's spanning tree is the path itself; cost must be the
        // optimal n−1 achieved by a monotone layout... the root is random,
        // so allow the layout cost of a path rooted anywhere: ≤ 2(n−1).
        let cost = la_cost(&g, &pi);
        assert!(cost <= 2 * 63, "path layout cost {cost}");
    }

    #[test]
    fn webbase_like_average_edge_length_small() {
        // The heuristic's value proposition: short average edge length on
        // real-world-like graphs compared to a random order.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = datasets::genbank_like(5_000, &mut rng);
        let pi = spanning_forest_la(&g, &mut rng);
        let avg = avg_edge_length(&g, &pi);
        use rand::seq::SliceRandom;
        let mut rnd: Vec<u32> = (0..g.n()).collect();
        rnd.shuffle(&mut rng);
        let rnd_pi = Permutation::from_order(rnd).unwrap();
        let rnd_avg = avg_edge_length(&g, &rnd_pi);
        assert!(
            avg * 5.0 < rnd_avg,
            "forest LA avg {avg} not ≪ random {rnd_avg}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        let g = random::random_tree(500, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(
            spanning_forest_la(&g, &mut r1),
            spanning_forest_la(&g, &mut r2)
        );
    }
}
