//! Linear arrangement algorithms (§5 of the paper).
//!
//! A *linear arrangement* of a graph `G` is a permutation `π` of its
//! vertices; its cost is `λ_π(G) = Σ_{(u,v) ∈ E} |π(u) − π(v)|` (§5.1).
//! LA-Decompose turns low-cost arrangements into compact arrow matrix
//! decompositions, so this crate provides the arrangement constructions
//! the paper analyses:
//!
//! * [`separator_la()`] — recursive separator-based layout (§5.2, Lemma 2),
//! * [`tree_layout`] — the smallest-first order for trees (§5.4, Lemma 3),
//! * [`spanning_forest_la()`] — the near-linear random spanning forest
//!   heuristic used in the paper's evaluation (§5.3),
//! * [`rcm`] — reverse Cuthill-McKee, the classic bandwidth-reduction
//!   baseline the paper contrasts against (§3, "Graph Reordering").
//!
//! Cost, bandwidth and band-occupancy metrics are in [`arrangement`].

pub mod arrangement;
pub mod exact;
pub mod rcm;
pub mod separator_la;
pub mod spanning_forest_la;
pub mod tree_layout;

pub use arrangement::{la_bandwidth, la_cost};
pub use exact::minimum_linear_arrangement;
pub use rcm::reverse_cuthill_mckee;
pub use separator_la::separator_la;
pub use spanning_forest_la::spanning_forest_la;
pub use tree_layout::smallest_first_order;
