//! Cost and quality metrics of a linear arrangement.

use amd_graph::Graph;
use amd_sparse::Permutation;

/// Arrangement cost `λ_π(G) = Σ_{(u,v) ∈ E} |π(u) − π(v)|` (§5.1).
pub fn la_cost(g: &Graph, pi: &Permutation) -> u64 {
    assert_eq!(g.n(), pi.len());
    g.edges()
        .map(|(u, v)| pi.position(u).abs_diff(pi.position(v)) as u64)
        .sum()
}

/// Bandwidth of the arrangement: `max_{(u,v) ∈ E} |π(u) − π(v)|` (§2).
pub fn la_bandwidth(g: &Graph, pi: &Permutation) -> u32 {
    assert_eq!(g.n(), pi.len());
    g.edges()
        .map(|(u, v)| pi.position(u).abs_diff(pi.position(v)))
        .max()
        .unwrap_or(0)
}

/// Average edge length `λ_π(G) / m`, the quantity Lemma 1's compaction
/// factor compares against the arrow width.
pub fn avg_edge_length(g: &Graph, pi: &Permutation) -> f64 {
    if g.m() == 0 {
        0.0
    } else {
        la_cost(g, pi) as f64 / g.m() as f64
    }
}

/// Number of edges with `|π(u) − π(v)| ≤ w` — the in-band edge count of
/// Lemma 3.
pub fn edges_within(g: &Graph, pi: &Permutation, w: u32) -> usize {
    assert_eq!(g.n(), pi.len());
    g.edges()
        .filter(|&(u, v)| pi.position(u).abs_diff(pi.position(v)) <= w)
        .count()
}

/// Summary of an arrangement's quality.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrangementQuality {
    /// Total cost `λ_π(G)`.
    pub cost: u64,
    /// Bandwidth under the arrangement.
    pub bandwidth: u32,
    /// Average edge length.
    pub avg_length: f64,
}

impl ArrangementQuality {
    /// Evaluates an arrangement.
    pub fn of(g: &Graph, pi: &Permutation) -> Self {
        Self {
            cost: la_cost(g, pi),
            bandwidth: la_bandwidth(g, pi),
            avg_length: avg_edge_length(g, pi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;

    #[test]
    fn identity_on_path_has_unit_edges() {
        let g = basic::path(6);
        let id = Permutation::identity(6);
        assert_eq!(la_cost(&g, &id), 5);
        assert_eq!(la_bandwidth(&g, &id), 1);
        assert_eq!(avg_edge_length(&g, &id), 1.0);
        assert_eq!(edges_within(&g, &id, 1), 5);
        assert_eq!(edges_within(&g, &id, 0), 0);
    }

    #[test]
    fn reversal_preserves_cost() {
        let g = basic::star(8);
        let id = Permutation::identity(8);
        let rev = Permutation::from_positions((0..8).rev().collect()).unwrap();
        assert_eq!(la_cost(&g, &id), la_cost(&g, &rev));
        assert_eq!(la_bandwidth(&g, &id), la_bandwidth(&g, &rev));
    }

    #[test]
    fn star_identity_cost_is_sum_of_distances() {
        // Hub at position 0: cost = 1 + 2 + ... + (n-1).
        let g = basic::star(5);
        let id = Permutation::identity(5);
        assert_eq!(la_cost(&g, &id), 1 + 2 + 3 + 4);
        assert_eq!(la_bandwidth(&g, &id), 4);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = Graph::empty(4);
        let id = Permutation::identity(4);
        assert_eq!(la_cost(&g, &id), 0);
        assert_eq!(la_bandwidth(&g, &id), 0);
        assert_eq!(avg_edge_length(&g, &id), 0.0);
    }

    #[test]
    fn quality_struct_consistent() {
        let g = basic::cycle(6);
        let id = Permutation::identity(6);
        let q = ArrangementQuality::of(&g, &id);
        assert_eq!(q.cost, 5 + 5); // five unit edges + closing edge of length 5
        assert_eq!(q.bandwidth, 5);
        assert!((q.avg_length - 10.0 / 6.0).abs() < 1e-12);
    }
}
