//! Smallest-first tree layouts (§5.4).
//!
//! For a rooted tree, place the root first, then the children's subtrees
//! one after another in *increasing* subtree-size order, recursively.
//! Lemma 3 shows that under this order at least
//! `min(n−1, ⌈(x−1)(n−1)/x⌉ + 1)` edges lie within an `xΔ`-wide band
//! around the diagonal, which drives the tree bound in Table 1.
//!
//! The implementation is iterative (explicit stack), so path-shaped trees
//! with millions of vertices do not overflow the call stack.

use amd_graph::mst::SpanningForest;
use amd_graph::Graph;

/// Computes the smallest-first order of a forest given parent pointers.
///
/// Returns the vertex order (position → vertex) covering every vertex:
/// trees are laid out one after another in the order `roots` are listed.
pub fn smallest_first_order(forest: &SpanningForest) -> Vec<u32> {
    let n = forest.parent.len();
    let sizes = forest.subtree_sizes();
    // children lists, each sorted by increasing subtree size (ties by id
    // for determinism).
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let p = forest.parent[v as usize];
        if p != u32::MAX {
            children[p as usize].push(v);
        }
    }
    for ch in &mut children {
        ch.sort_unstable_by_key(|&c| (sizes[c as usize], c));
    }
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<u32> = Vec::new();
    for &root in &forest.roots {
        stack.push(root);
        while let Some(v) = stack.pop() {
            order.push(v);
            // Push children in reverse so the smallest is popped first;
            // pre-order DFS keeps each subtree contiguous.
            for &c in children[v as usize].iter().rev() {
                stack.push(c);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Smallest-first order of a tree given as a [`Graph`], rooted at `root`.
///
/// Panics if the graph is not connected (use [`smallest_first_order`] with
/// a forest for the general case).
pub fn smallest_first_order_of_tree(g: &Graph, root: u32) -> Vec<u32> {
    let forest = root_tree(g, root);
    assert_eq!(
        forest.roots.len(),
        1,
        "smallest_first_order_of_tree requires a connected tree"
    );
    smallest_first_order(&forest)
}

/// Orients a tree/forest graph into parent pointers rooted at `root` (and
/// at the smallest vertex of every other component).
pub fn root_tree(g: &Graph, root: u32) -> SpanningForest {
    let n = g.n();
    let mut parent = vec![u32::MAX; n as usize];
    let mut seen = vec![false; n as usize];
    let mut roots = Vec::new();
    let mut queue = Vec::new();
    let mut edges = Vec::with_capacity(n.saturating_sub(1) as usize);
    let starts = std::iter::once(root).chain(0..n);
    for s in starts {
        if seen[s as usize] {
            continue;
        }
        roots.push(s);
        seen[s as usize] = true;
        queue.clear();
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    parent[v as usize] = u;
                    edges.push((u, v));
                    queue.push(v);
                }
            }
        }
    }
    SpanningForest {
        parent,
        roots,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::{edges_within, la_cost};
    use amd_graph::generators::{basic, random};
    use amd_sparse::Permutation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn perm_from_order(order: Vec<u32>) -> Permutation {
        Permutation::from_order(order).unwrap()
    }

    #[test]
    fn path_layout_is_monotone() {
        let g = basic::path(8);
        let order = smallest_first_order_of_tree(&g, 0);
        assert_eq!(order, (0..8).collect::<Vec<_>>());
        let pi = perm_from_order(order);
        assert_eq!(la_cost(&g, &pi), 7);
    }

    #[test]
    fn subtrees_are_contiguous() {
        // Balanced binary tree: every subtree must occupy a contiguous
        // range of positions (the property Lemma 3's proof uses).
        let g = basic::complete_ary_tree(2, 31);
        let order = smallest_first_order_of_tree(&g, 0);
        let pi = perm_from_order(order);
        let forest = root_tree(&g, 0);
        let sizes = forest.subtree_sizes();
        for v in 0..31u32 {
            // Collect positions of the subtree of v via parent walks.
            let mut positions: Vec<u32> = (0..31u32)
                .filter(|&u| {
                    let mut x = u;
                    loop {
                        if x == v {
                            return true;
                        }
                        let p = forest.parent[x as usize];
                        if p == u32::MAX {
                            return false;
                        }
                        x = p;
                    }
                })
                .map(|u| pi.position(u))
                .collect();
            positions.sort_unstable();
            assert_eq!(positions.len() as u32, sizes[v as usize]);
            for w in positions.windows(2) {
                assert_eq!(w[1], w[0] + 1, "subtree of {v} not contiguous");
            }
        }
    }

    #[test]
    fn smallest_child_comes_first() {
        // Root 0 with children: 1 (leaf) and 2 (subtree of size 3).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (2, 3), (2, 4)]);
        let order = smallest_first_order_of_tree(&g, 0);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1, "leaf child must precede bigger subtree");
        assert_eq!(order[2], 2);
    }

    #[test]
    fn lemma3_band_occupancy_on_random_trees() {
        // Lemma 3: at least ⌈(x−1)(n−1)/x⌉ + 1 edges within an xΔ band.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in [50u32, 200, 500] {
            let g = random::random_tree(n, &mut rng);
            let delta = g.max_degree();
            let order = smallest_first_order_of_tree(&g, 0);
            let pi = perm_from_order(order);
            for x in [2u32, 3, 5] {
                let within = edges_within(&g, &pi, x * delta);
                let m = (n - 1) as u64;
                let guarantee = m.min(((x as u64 - 1) * m).div_ceil(x as u64) + 1) as usize;
                assert!(
                    within >= guarantee,
                    "n={n} x={x}: {within} < guaranteed {guarantee}"
                );
            }
        }
    }

    #[test]
    fn forest_layout_covers_all_components() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (2, 4)]);
        let forest = root_tree(&g, 2);
        let order = smallest_first_order(&forest);
        assert_eq!(order.len(), 6);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        // Component of 2 (size 3) comes first because we rooted there.
        assert_eq!(order[0], 2);
    }

    #[test]
    #[should_panic(expected = "connected tree")]
    fn tree_layout_rejects_forest() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        smallest_first_order_of_tree(&g, 0);
    }
}
