//! Exact minimum linear arrangement by exhaustive search.
//!
//! MLA is NP-hard (§5.1), so this solver is exponential and restricted to
//! tiny graphs (`n ≤ 10` by default). Its purpose is *testing*: it gives
//! the ground truth against which the quality of the polynomial heuristics
//! (Separator-LA, smallest-first, random forests) is measured in the
//! property tests and the layout ablation.

use amd_graph::Graph;
use amd_sparse::Permutation;

/// Exact MLA by branch-and-bound over prefixes.
///
/// Complexity `O(n!)` worst case, pruned by the running partial cost;
/// panics if `g.n()` exceeds `max_n` (guard against accidental blowup).
pub fn minimum_linear_arrangement(g: &Graph, max_n: u32) -> (Permutation, u64) {
    let n = g.n();
    assert!(n <= max_n, "exact MLA limited to n <= {max_n}, got {n}");
    if n == 0 {
        return (Permutation::identity(0), 0);
    }
    let mut best_order: Vec<u32> = (0..n).collect();
    let mut best_cost = cost_of_order(g, &best_order);
    let mut prefix: Vec<u32> = Vec::with_capacity(n as usize);
    let mut used = vec![false; n as usize];
    branch(
        g,
        &mut prefix,
        &mut used,
        0,
        &mut best_order,
        &mut best_cost,
    );
    let pi = Permutation::from_order(best_order).expect("search emits a permutation");
    (pi, best_cost)
}

/// Cost of placing vertices in the given order.
fn cost_of_order(g: &Graph, order: &[u32]) -> u64 {
    let mut pos = vec![0u32; g.n() as usize];
    for (p, &v) in order.iter().enumerate() {
        pos[v as usize] = p as u32;
    }
    g.edges()
        .map(|(u, v)| pos[u as usize].abs_diff(pos[v as usize]) as u64)
        .sum()
}

/// Partial cost of the prefix: edges with both endpoints placed contribute
/// exactly; edges with one endpoint placed contribute at least the
/// distance to the end of the prefix (they must stretch at least that
/// far) — an admissible lower bound for pruning.
fn branch(
    g: &Graph,
    prefix: &mut Vec<u32>,
    used: &mut [bool],
    partial: u64,
    best_order: &mut Vec<u32>,
    best_cost: &mut u64,
) {
    let n = g.n() as usize;
    if prefix.len() == n {
        if partial < *best_cost {
            *best_cost = partial;
            best_order.copy_from_slice(prefix);
        }
        return;
    }
    if partial >= *best_cost {
        return; // admissible bound exceeded
    }
    let next_pos = prefix.len() as u32;
    for v in 0..g.n() {
        if used[v as usize] {
            continue;
        }
        // Cost increment: edges from v to already-placed vertices get their
        // exact length now.
        let mut inc = 0u64;
        for (p, &u) in prefix.iter().enumerate() {
            if g.has_edge(v, u) {
                inc += (next_pos - p as u32) as u64;
            }
        }
        used[v as usize] = true;
        prefix.push(v);
        branch(g, prefix, used, partial + inc, best_order, best_cost);
        prefix.pop();
        used[v as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::la_cost;
    use crate::separator_la;
    use crate::tree_layout::{root_tree, smallest_first_order};
    use amd_graph::generators::basic;
    use amd_graph::separator::CentroidSeparator;
    use amd_graph::GraphBuilder;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_optimum_is_monotone_order() {
        let g = basic::path(6);
        let (pi, cost) = minimum_linear_arrangement(&g, 10);
        assert_eq!(cost, 5);
        assert_eq!(la_cost(&g, &pi), 5);
    }

    #[test]
    fn star_optimum_places_hub_centrally() {
        // K_{1,4}: optimal cost = 1+1+2+2 = 6 with the hub in the middle.
        let g = basic::star(5);
        let (_, cost) = minimum_linear_arrangement(&g, 10);
        assert_eq!(cost, 6);
    }

    #[test]
    fn cycle_optimum() {
        // C_5: known MLA cost = 2(n−1) = 8.
        let g = basic::cycle(5);
        let (_, cost) = minimum_linear_arrangement(&g, 10);
        assert_eq!(cost, 8);
    }

    #[test]
    fn complete_graph_cost_is_order_invariant() {
        // K_4: every ordering costs Σ_{i<j} (j−i) = 10.
        let g = basic::complete(4);
        let (_, cost) = minimum_linear_arrangement(&g, 10);
        assert_eq!(cost, 10);
    }

    #[test]
    fn heuristics_are_near_optimal_on_small_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10 {
            // Random tree on 8 vertices.
            let n = 8u32;
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                b.add_edge(rng.gen_range(0..v), v);
            }
            let g = b.build();
            let (_, opt) = minimum_linear_arrangement(&g, 10);
            let sf = {
                let order = smallest_first_order(&root_tree(&g, 0));
                la_cost(&g, &Permutation::from_order(order).unwrap())
            };
            let sep = la_cost(&g, &separator_la(&g, &CentroidSeparator));
            // Lemma 3 / Lemma 2 style constants: within 3× of optimal on
            // trees this small.
            assert!(sf <= 3 * opt, "smallest-first {sf} vs optimal {opt}");
            assert!(sep <= 3 * opt, "separator-la {sep} vs optimal {opt}");
            assert!(sf >= opt && sep >= opt, "heuristic beat the optimum?!");
        }
    }

    #[test]
    #[should_panic(expected = "exact MLA limited")]
    fn size_guard() {
        let g = basic::path(20);
        minimum_linear_arrangement(&g, 10);
    }

    #[test]
    fn empty_graph() {
        let g = amd_graph::Graph::empty(0);
        let (pi, cost) = minimum_linear_arrangement(&g, 10);
        assert_eq!(pi.len(), 0);
        assert_eq!(cost, 0);
    }
}
