//! Reverse Cuthill-McKee, the classic bandwidth-reduction reordering.
//!
//! The paper's §3 discusses why pure bandwidth minimisation cannot handle
//! low-diameter or high-degree graphs (bandwidth ≥ (n−1)/D and ≥ Δ/2);
//! RCM is included as the representative of that line of work for the
//! ablation benchmarks.

use amd_graph::traversal::pseudo_peripheral;
use amd_graph::Graph;
use amd_sparse::Permutation;

/// Computes the reverse Cuthill-McKee ordering of `g`.
///
/// Each connected component is traversed breadth-first from a
/// pseudo-peripheral vertex, visiting neighbours in increasing degree
/// order; the concatenated visit order is reversed.
pub fn reverse_cuthill_mckee(g: &Graph) -> Permutation {
    let n = g.n();
    let mut visited = vec![false; n as usize];
    let mut order: Vec<u32> = Vec::with_capacity(n as usize);
    let mut neighbour_buf: Vec<u32> = Vec::new();
    // Process components seeded by lowest-degree unvisited vertex (common
    // RCM convention), then refine the seed to a pseudo-peripheral vertex.
    let mut by_degree: Vec<u32> = (0..n).collect();
    by_degree.sort_unstable_by_key(|&v| (g.degree(v), v));
    for &seed in &by_degree {
        if visited[seed as usize] {
            continue;
        }
        let start = if g.degree(seed) == 0 {
            seed
        } else {
            pseudo_peripheral(g, seed)
        };
        let mut queue = std::collections::VecDeque::new();
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbour_buf.clear();
            neighbour_buf.extend(
                g.neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| !visited[v as usize]),
            );
            neighbour_buf.sort_unstable_by_key(|&v| (g.degree(v), v));
            for &v in &neighbour_buf {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    Permutation::from_order(order).expect("RCM visits every vertex once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::la_bandwidth;
    use amd_graph::generators::basic;
    use amd_sparse::Permutation;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_gets_optimal_bandwidth() {
        let g = basic::path(50);
        let pi = reverse_cuthill_mckee(&g);
        assert_eq!(la_bandwidth(&g, &pi), 1);
    }

    #[test]
    fn grid_bandwidth_near_side_length() {
        let g = basic::grid_2d(10, 10);
        let pi = reverse_cuthill_mckee(&g);
        let bw = la_bandwidth(&g, &pi);
        // Optimal grid bandwidth is the side length; RCM should be close.
        assert!(bw <= 2 * 10, "RCM bandwidth {bw} too large for 10x10 grid");
    }

    #[test]
    fn improves_over_shuffled_order_on_grid() {
        let g = basic::grid_2d(8, 8);
        let pi = reverse_cuthill_mckee(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut rnd: Vec<u32> = (0..64).collect();
        rnd.shuffle(&mut rng);
        let rnd_pi = Permutation::from_order(rnd).unwrap();
        assert!(la_bandwidth(&g, &pi) < la_bandwidth(&g, &rnd_pi));
    }

    #[test]
    fn star_bandwidth_is_fundamental_lower_bound() {
        // Bandwidth ≥ ⌈Δ/2⌉ (§3): RCM cannot beat it, illustrating why the
        // arrow decomposition prunes hubs instead of reordering them.
        let g = basic::star(41);
        let pi = reverse_cuthill_mckee(&g);
        assert!(la_bandwidth(&g, &pi) >= 20);
    }

    #[test]
    fn handles_isolated_vertices_and_components() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let pi = reverse_cuthill_mckee(&g);
        assert_eq!(pi.len(), 6);
    }
}
