//! Coordinate-format sparse matrix builder.
//!
//! `CooMatrix` is the mutable staging format: algorithms push `(row, col,
//! value)` triplets in any order (duplicates allowed, summed on conversion)
//! and convert to [`CsrMatrix`](crate::CsrMatrix) for computation.

use crate::error::{SparseError, SparseResult};
use crate::scalar::Scalar;

/// A sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T: Scalar = f64> {
    rows: u32,
    cols: u32,
    entries: Vec<(u32, u32, T)>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Creates an empty `rows × cols` matrix.
    pub fn new(rows: u32, cols: u32) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` triplets.
    pub fn with_capacity(rows: u32, cols: u32, cap: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of stored triplets (before duplicate merging).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no triplet has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Triplet slice in insertion order.
    #[inline]
    pub fn entries(&self) -> &[(u32, u32, T)] {
        &self.entries
    }

    /// Pushes a triplet, validating bounds.
    pub fn push(&mut self, row: u32, col: u32, value: T) -> SparseResult<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Pushes both `(row, col, v)` and `(col, row, v)`; convenience for
    /// building symmetric adjacency matrices. Diagonal entries are pushed
    /// once.
    pub fn push_sym(&mut self, row: u32, col: u32, value: T) -> SparseResult<()> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Builds a COO matrix from a triplet iterator, validating bounds.
    pub fn from_triplets<I>(rows: u32, cols: u32, triplets: I) -> SparseResult<Self>
    where
        I: IntoIterator<Item = (u32, u32, T)>,
    {
        let iter = triplets.into_iter();
        let mut coo = Self::with_capacity(rows, cols, iter.size_hint().0);
        for (r, c, v) in iter {
            coo.push(r, c, v)?;
        }
        Ok(coo)
    }

    /// Canonicalises the triplet list in place: sorts by `(row, col)`,
    /// sums duplicates, and drops entries whose sum is exactly zero.
    ///
    /// Compaction is **idempotent** — a compacted matrix round-trips
    /// unchanged — which is what lets the streaming layer fold a delta
    /// into its base repeatedly without drift (each position ends up with
    /// one triplet holding the total).
    pub fn compact(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(u32, u32, T)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => out.push((r, c, v)),
            }
        }
        out.retain(|&(_, _, v)| v != T::ZERO);
        self.entries = out;
    }

    /// Converts to CSR, sorting triplets and summing duplicates.
    ///
    /// Entries whose summed value equals `T::ZERO` are kept (explicit
    /// zeros), matching usual sparse-library behaviour; use
    /// [`CsrMatrix::prune_zeros`](crate::CsrMatrix::prune_zeros) to drop
    /// them.
    pub fn to_csr(&self) -> crate::CsrMatrix<T> {
        let n = self.rows as usize;
        // Counting sort by row: O(nnz + n), no comparison sort needed.
        let mut counts = vec![0usize; n + 1];
        for &(r, _, _) in &self.entries {
            counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<u32> = vec![0; self.entries.len()];
        {
            let mut next = counts.clone();
            for (idx, &(r, _, _)) in self.entries.iter().enumerate() {
                order[next[r as usize]] = idx as u32;
                next[r as usize] += 1;
            }
        }
        // Sort each row segment by column and merge duplicates.
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<T> = Vec::with_capacity(self.entries.len());
        indptr.push(0usize);
        let mut scratch: Vec<(u32, T)> = Vec::new();
        for row in 0..n {
            scratch.clear();
            for &idx in &order[counts[row]..counts[row + 1]] {
                let (_, c, v) = self.entries[idx as usize];
                scratch.push((c, v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        crate::CsrMatrix::from_raw_unchecked(self.rows, self.cols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_bounds() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        assert_eq!(coo.len(), 2);
        assert!(matches!(
            coo.push(3, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { row: 3, .. })
        ));
        assert!(matches!(
            coo.push(0, 5, 1.0),
            Err(SparseError::IndexOutOfBounds { col: 5, .. })
        ));
    }

    #[test]
    fn symmetric_push() {
        let mut coo = CooMatrix::<f64>::new(4, 4);
        coo.push_sym(1, 3, 1.0).unwrap();
        coo.push_sym(2, 2, 5.0).unwrap();
        assert_eq!(coo.len(), 3); // off-diagonal doubled, diagonal once
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 3), 1.0);
        assert_eq!(csr.get(3, 1), 1.0);
        assert_eq!(csr.get(2, 2), 5.0);
    }

    #[test]
    fn to_csr_sorts_and_merges_duplicates() {
        let mut coo = CooMatrix::<f64>::new(2, 4);
        coo.push(1, 3, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 3, 4.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_indices(1), &[0, 3]);
        assert_eq!(csr.get(1, 3), 5.0);
        assert_eq!(csr.get(0, 2), 2.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::<f64>::new(5, 5);
        assert!(coo.is_empty());
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 5);
    }

    #[test]
    fn zero_dimension_matrix() {
        let coo = CooMatrix::<f64>::new(0, 0);
        let csr = coo.to_csr();
        assert_eq!(csr.rows(), 0);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn from_triplets_builds() {
        let coo = CooMatrix::from_triplets(2, 2, vec![(0u32, 0u32, 1.0f64), (1, 1, 2.0)]).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(1, 1), 2.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        let res = CooMatrix::<f64>::from_triplets(2, 2, vec![(2u32, 0u32, 1.0f64)]);
        assert!(res.is_err());
    }

    #[test]
    fn compact_merges_sorts_and_drops_zero_sums() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(2, 1, 1.0).unwrap();
        coo.push(0, 2, 4.0).unwrap();
        coo.push(2, 1, -1.0).unwrap(); // cancels to zero
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 0, 3.0).unwrap();
        coo.compact();
        assert_eq!(coo.entries(), &[(0, 0, 5.0), (0, 2, 4.0)]);
    }

    #[test]
    fn compact_is_idempotent() {
        let mut coo = CooMatrix::<f64>::new(4, 4);
        for (r, c, v) in [(3, 0, 1.5), (1, 1, -2.0), (3, 0, 0.5), (0, 3, 7.0)] {
            coo.push(r, c, v).unwrap();
        }
        coo.compact();
        let once = coo.clone();
        coo.compact();
        assert_eq!(coo, once);
    }
}
