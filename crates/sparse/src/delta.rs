//! Sparse update accumulation: the ΔA builder of the streaming layer.
//!
//! A [`DeltaBuilder`] collects additive updates to a fixed-shape sparse
//! matrix. Unlike [`CooMatrix`] — the append-only
//! staging format — the builder keys entries by position, so repeated
//! updates to the same coordinate coalesce immediately and the builder's
//! size reflects the number of *distinct* touched positions, which is the
//! quantity staleness budgets reason about. The absolute mass `Σ |δ|` of
//! the accumulated delta is maintained incrementally, so budget checks
//! after every update are `O(1)`.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use crate::scalar::Scalar;
use std::collections::HashMap;

/// An accumulator of additive sparse updates `ΔA`.
///
/// Entries that cancel back to exactly zero are dropped eagerly, so
/// [`len`](Self::len) counts positions with a *nonzero* pending change.
#[derive(Debug, Clone, Default)]
pub struct DeltaBuilder<T: Scalar = f64> {
    rows: u32,
    cols: u32,
    entries: HashMap<(u32, u32), T>,
    mass: f64,
}

impl<T: Scalar> DeltaBuilder<T> {
    /// An empty delta for a `rows × cols` operand.
    pub fn new(rows: u32, cols: u32) -> Self {
        Self {
            rows,
            cols,
            entries: HashMap::new(),
            mass: 0.0,
        }
    }

    /// Number of rows of the operand the delta applies to.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns of the operand the delta applies to.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of distinct positions with a nonzero pending change.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no nonzero change is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Absolute mass `Σ |δ|` of the pending delta.
    #[inline]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// The pending change at `(row, col)` (`T::ZERO` if untouched).
    pub fn get(&self, row: u32, col: u32) -> T {
        self.entries.get(&(row, col)).copied().unwrap_or(T::ZERO)
    }

    /// Accumulates `delta` at `(row, col)`, validating bounds. Updates to
    /// the same position coalesce; a position whose accumulated change
    /// returns to exactly zero is removed from the builder.
    pub fn add(&mut self, row: u32, col: u32, delta: T) -> SparseResult<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        if delta == T::ZERO {
            return Ok(());
        }
        let slot = self.entries.entry((row, col)).or_insert(T::ZERO);
        self.mass -= slot.to_f64().abs();
        *slot += delta;
        let now = *slot;
        if now == T::ZERO {
            self.entries.remove(&(row, col));
        } else {
            self.mass += now.to_f64().abs();
        }
        Ok(())
    }

    /// Accumulates at `(row, col)` and, for `row != col`, mirrors the same
    /// change at `(col, row)` — the symmetric-adjacency convenience that
    /// matches [`CooMatrix::push_sym`](crate::CooMatrix::push_sym).
    pub fn add_sym(&mut self, row: u32, col: u32, delta: T) -> SparseResult<()> {
        self.add(row, col, delta)?;
        if row != col {
            self.add(col, row, delta)?;
        }
        Ok(())
    }

    /// Forgets every pending change.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.mass = 0.0;
    }

    /// Iterates over pending `(row, col, delta)` triplets in unspecified
    /// order (the builder is hash-keyed; use [`to_csr`](Self::to_csr) for
    /// a canonical view).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        self.entries.iter().map(|(&(r, c), &v)| (r, c, v))
    }

    /// The sorted, deduplicated vertices incident to a pending change —
    /// the *touched set* an incremental re-decomposition localizes on.
    /// `O(len · log len)`.
    pub fn touched_vertices(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self.entries.keys().flat_map(|&(r, c)| [r, c]).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// The pending delta as a COO staging matrix.
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.len());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("builder entries are in bounds");
        }
        coo
    }

    /// The pending delta as a canonical CSR matrix (rows sorted, columns
    /// strictly increasing). This is the `ΔA` the corrected multiply path
    /// consumes; building it is `O(len + rows)`.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        self.to_coo().to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_coalesces() {
        let mut d = DeltaBuilder::<f64>::new(4, 4);
        d.add(1, 2, 2.0).unwrap();
        d.add(1, 2, 3.0).unwrap();
        d.add(0, 0, -1.0).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(1, 2), 5.0);
        assert_eq!(d.mass(), 6.0);
    }

    #[test]
    fn cancellation_removes_entries() {
        let mut d = DeltaBuilder::<f64>::new(3, 3);
        d.add(2, 1, 4.0).unwrap();
        d.add(2, 1, -4.0).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.mass(), 0.0);
        assert_eq!(d.get(2, 1), 0.0);
    }

    #[test]
    fn zero_updates_are_ignored() {
        let mut d = DeltaBuilder::<f64>::new(3, 3);
        d.add(0, 0, 0.0).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn bounds_are_checked() {
        let mut d = DeltaBuilder::<f64>::new(2, 2);
        assert!(d.add(2, 0, 1.0).is_err());
        assert!(d.add(0, 5, 1.0).is_err());
    }

    #[test]
    fn symmetric_add_mirrors() {
        let mut d = DeltaBuilder::<f64>::new(4, 4);
        d.add_sym(1, 3, 2.0).unwrap();
        d.add_sym(2, 2, 5.0).unwrap();
        assert_eq!(d.get(1, 3), 2.0);
        assert_eq!(d.get(3, 1), 2.0);
        assert_eq!(d.get(2, 2), 5.0);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn touched_vertices_are_sorted_and_deduped() {
        let mut d = DeltaBuilder::<f64>::new(8, 8);
        d.add_sym(5, 2, 1.0).unwrap();
        d.add(2, 7, -1.0).unwrap();
        d.add(2, 2, 3.0).unwrap();
        assert_eq!(d.touched_vertices(), vec![2, 5, 7]);
        // Cancelled entries stop being touched.
        d.add(2, 7, 1.0).unwrap();
        assert_eq!(d.touched_vertices(), vec![2, 5]);
        assert!(DeltaBuilder::<f64>::new(3, 3).touched_vertices().is_empty());
    }

    #[test]
    fn csr_view_is_canonical() {
        let mut d = DeltaBuilder::<f64>::new(3, 3);
        d.add(2, 2, 1.0).unwrap();
        d.add(0, 1, -2.0).unwrap();
        let csr = d.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), -2.0);
        assert_eq!(csr.get(2, 2), 1.0);
    }

    #[test]
    fn clear_resets_mass() {
        let mut d = DeltaBuilder::<f64>::new(3, 3);
        d.add(1, 1, 7.0).unwrap();
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.mass(), 0.0);
    }
}
