//! Vertex/row permutations and the symmetric reorderings `PᵀAP`.
//!
//! A [`Permutation`] `π` maps a vertex `v` to its *position* `π(v)` in a
//! linear arrangement (§5.1 of the paper). The associated permutation
//! matrix `P_π` has `(P_π)_{v, π(v)} = 1`, so:
//!
//! * `PᵀAP` places entry `A_{u,v}` at `(π(u), π(v))` — "reorder the matrix
//!   by the arrangement",
//! * `PᵀX` places row `v` of `X` at position `π(v)`,
//! * `P · Y` undoes that reordering.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::scalar::Scalar;

/// A bijection `π : {0..n} → {0..n}` from vertices to positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `pos[v] = π(v)`.
    pos: Vec<u32>,
    /// `inv[p] = π⁻¹(p)`: the vertex placed at position `p`.
    inv: Vec<u32>,
}

impl Permutation {
    /// Identity permutation on `n` elements.
    pub fn identity(n: u32) -> Self {
        let pos: Vec<u32> = (0..n).collect();
        Self {
            inv: pos.clone(),
            pos,
        }
    }

    /// Builds from `pos[v] = π(v)`, validating bijectivity.
    pub fn from_positions(pos: Vec<u32>) -> SparseResult<Self> {
        let n = pos.len();
        let mut inv = vec![u32::MAX; n];
        for (v, &p) in pos.iter().enumerate() {
            if p as usize >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "position {p} out of range for n = {n}"
                )));
            }
            if inv[p as usize] != u32::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "position {p} assigned twice"
                )));
            }
            inv[p as usize] = v as u32;
        }
        Ok(Self { pos, inv })
    }

    /// Builds from the *order* of vertices: `order[p]` is the vertex placed
    /// at position `p` (i.e. `order = π⁻¹`).
    pub fn from_order(order: Vec<u32>) -> SparseResult<Self> {
        let n = order.len();
        let mut pos = vec![u32::MAX; n];
        for (p, &v) in order.iter().enumerate() {
            if v as usize >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "vertex {v} out of range for n = {n}"
                )));
            }
            if pos[v as usize] != u32::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "vertex {v} placed twice"
                )));
            }
            pos[v as usize] = p as u32;
        }
        Ok(Self { pos, inv: order })
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> u32 {
        self.pos.len() as u32
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// `π(v)`: position of vertex `v`.
    #[inline]
    pub fn position(&self, v: u32) -> u32 {
        self.pos[v as usize]
    }

    /// `π⁻¹(p)`: vertex at position `p`.
    #[inline]
    pub fn vertex_at(&self, p: u32) -> u32 {
        self.inv[p as usize]
    }

    /// The position array `pos[v] = π(v)`.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.pos
    }

    /// The order array `order[p] = π⁻¹(p)`.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.inv
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        Self {
            pos: self.inv.clone(),
            inv: self.pos.clone(),
        }
    }

    /// Composition `(self ∘ other)(v) = self(other(v))`.
    ///
    /// In Algorithm 2 the shuffle sending rows from arrow matrix `j` to
    /// `j + 1` is `π_{j+1} ∘ π_j⁻¹`, built as
    /// `pi_next.compose(&pi_cur.inverse())`.
    pub fn compose(&self, other: &Self) -> SparseResult<Self> {
        if self.len() != other.len() {
            return Err(SparseError::InvalidPermutation(format!(
                "composing permutations of different sizes {} and {}",
                self.len(),
                other.len()
            )));
        }
        let pos: Vec<u32> = (0..other.len())
            .map(|v| self.pos[other.pos[v as usize] as usize])
            .collect();
        Ok(Self::from_positions(pos).expect("composition of bijections is a bijection"))
    }

    /// Symmetric reordering `PᵀAP`: entry `(u, v)` moves to `(π(u), π(v))`.
    pub fn apply_symmetric<T: Scalar>(&self, a: &CsrMatrix<T>) -> SparseResult<CsrMatrix<T>> {
        if a.rows() != self.len() || a.cols() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (self.len(), self.len()),
            });
        }
        // Build CSR of the permuted matrix directly: row p of the result is
        // row π⁻¹(p) of A with columns mapped through π and re-sorted.
        let n = a.rows();
        let mut indptr = Vec::with_capacity(n as usize + 1);
        let mut indices = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        indptr.push(0usize);
        let mut scratch: Vec<(u32, T)> = Vec::new();
        for p in 0..n {
            let v = self.inv[p as usize];
            scratch.clear();
            for (&c, &val) in a.row_indices(v).iter().zip(a.row_values(v)) {
                scratch.push((self.pos[c as usize], val));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, val) in &scratch {
                indices.push(c);
                values.push(val);
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(n, n, indptr, indices, values))
    }

    /// Row permutation `PᵀX`: row `v` of `X` moves to position `π(v)`.
    pub fn apply_rows<T: Scalar>(&self, x: &DenseMatrix<T>) -> SparseResult<DenseMatrix<T>> {
        if x.rows() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (x.rows(), x.cols()),
                right: (self.len(), self.len()),
            });
        }
        let k = x.cols();
        let mut out = DenseMatrix::zeros(x.rows(), k);
        for p in 0..x.rows() {
            let v = self.inv[p as usize];
            out.row_mut(p).copy_from_slice(x.row(v));
        }
        Ok(out)
    }

    /// Inverse row permutation `P · Y`: row at position `π(v)` moves back to
    /// index `v`.
    pub fn unapply_rows<T: Scalar>(&self, y: &DenseMatrix<T>) -> SparseResult<DenseMatrix<T>> {
        self.inverse().apply_rows(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn cyclic3() -> Permutation {
        // π(0)=1, π(1)=2, π(2)=0
        Permutation::from_positions(vec![1, 2, 0]).unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let id = Permutation::identity(5);
        for v in 0..5 {
            assert_eq!(id.position(v), v);
            assert_eq!(id.vertex_at(v), v);
        }
    }

    #[test]
    fn from_positions_validates() {
        assert!(Permutation::from_positions(vec![0, 0]).is_err());
        assert!(Permutation::from_positions(vec![0, 5]).is_err());
        assert!(Permutation::from_positions(vec![1, 0]).is_ok());
    }

    #[test]
    fn from_order_validates() {
        assert!(Permutation::from_order(vec![1, 1]).is_err());
        assert!(Permutation::from_order(vec![2, 0]).is_err());
        let p = Permutation::from_order(vec![2, 0, 1]).unwrap();
        assert_eq!(p.vertex_at(0), 2);
        assert_eq!(p.position(2), 0);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = cyclic3();
        let id = p.compose(&p.inverse()).unwrap();
        assert_eq!(id, Permutation::identity(3));
        let id2 = p.inverse().compose(&p).unwrap();
        assert_eq!(id2, Permutation::identity(3));
    }

    #[test]
    fn symmetric_reorder_moves_entries() {
        // A has a single entry at (0, 2); π(0)=1, π(2)=0 → entry at (1, 0).
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 2, 7.0).unwrap();
        let a = coo.to_csr();
        let p = cyclic3();
        let b = p.apply_symmetric(&a).unwrap();
        assert_eq!(b.get(1, 0), 7.0);
        assert_eq!(b.nnz(), 1);
    }

    #[test]
    fn symmetric_reorder_roundtrip() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push_sym(0, 1, 1.0).unwrap();
        coo.push_sym(1, 3, 2.0).unwrap();
        coo.push(2, 2, 3.0).unwrap();
        let a = coo.to_csr();
        let p = Permutation::from_positions(vec![3, 1, 0, 2]).unwrap();
        let b = p.apply_symmetric(&a).unwrap();
        let back = p.inverse().apply_symmetric(&b).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn row_permutation_and_inverse() {
        let x = DenseMatrix::from_fn(3, 2, |r, _| r as f64);
        let p = cyclic3();
        let px = p.apply_rows(&x).unwrap();
        // row v of X lands at position π(v): row 0 → pos 1, row 1 → pos 2, row 2 → pos 0
        assert_eq!(px.row(0), &[2.0, 2.0]);
        assert_eq!(px.row(1), &[0.0, 0.0]);
        assert_eq!(px.row(2), &[1.0, 1.0]);
        let back = p.unapply_rows(&px).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn permutation_matrix_semantics_match_spmm() {
        // Verify PᵀX == multiplying by the explicit transpose matrix.
        let p = cyclic3();
        let x = DenseMatrix::from_fn(3, 1, |r, _| (r + 1) as f64);
        // With P[v][π(v)] = 1 the forward shuffle is PᵀX, where
        // Pᵀ[π(v)][v] = 1. Build Pᵀ explicitly and compare.
        let mut coo = CooMatrix::new(3, 3);
        for v in 0..3 {
            coo.push(p.position(v), v, 1.0).unwrap(); // Pᵀ
        }
        let pm = coo.to_csr();
        let px_via_matrix = crate::spmm::spmm(&pm, &x).unwrap();
        let px = p.apply_rows(&x).unwrap();
        assert_eq!(px, px_via_matrix);
    }

    #[test]
    fn shape_mismatch_errors() {
        let p = cyclic3();
        let x = DenseMatrix::<f64>::zeros(4, 1);
        assert!(p.apply_rows(&x).is_err());
        let a = CsrMatrix::<f64>::zeros(4, 4);
        assert!(p.apply_symmetric(&a).is_err());
        let q = Permutation::identity(4);
        assert!(p.compose(&q).is_err());
    }
}
