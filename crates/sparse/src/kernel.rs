//! Fused active-prefix level kernels for the arrow decomposition multiply.
//!
//! The decomposition multiply `AX = Σᵢ P_πᵢ (Bᵢ (Pᵀ_πᵢ X))` was historically
//! executed level by level as three materialised passes — permute `X`,
//! banded SpMM, permute back — each touching `O(n·k)` memory even when the
//! level's *active prefix* (the leading `active_n` positions that can host
//! nonzeros) is tiny, as it is for spliced levels produced by incremental
//! refresh. The kernels here fuse the three passes into one:
//!
//! ```text
//! y[order[p]] += Σ_c B[p, c] · x[order[c]]      for p < active_n
//! ```
//!
//! The row gather `x[order[c]]` *is* the permutation `Pᵀ_πᵢ X`, the scatter
//! through `order[p]` *is* `P_πᵢ`, and nothing outside the active prefix is
//! read or written. On top of the fusion the RHS is cache-blocked: the `k`
//! columns of `X` are processed [`DEFAULT_K_BLOCK`] at a time so the block
//! accumulator and the gathered `x` rows stay cache-resident across a row's
//! nonzeros.
//!
//! # Exactness
//!
//! Both kernels are **bit-identical** to the unfused three-pass reference
//! for every non-NaN input, not merely for integer data. Per output element
//! the reference computes `acc = 0; acc += v₀·x₀; acc += v₁·x₁; …` inside
//! the level SpMM and then performs one `y += acc`; the fused kernels run
//! the exact same operation sequence per element (the k-block accumulator
//! starts at `+0.0` and is folded into `y` once per block). Skipping rows
//! outside the active prefix is exact because those rows are structurally
//! empty — the reference adds exactly `+0.0` there — and an IEEE-754
//! round-to-nearest accumulation seeded with `+0.0` can never produce
//! `-0.0`, so dropping the `+0.0` addition cannot flip a sign.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::scalar::Scalar;
use rayon::prelude::*;

/// RHS columns processed per cache block. 64 `f64` columns are 512 bytes of
/// accumulator — small enough to stay in L1 alongside the gathered `x` rows,
/// wide enough to amortise the CSR row walk.
pub const DEFAULT_K_BLOCK: usize = 64;

fn check_level_shapes<T: Scalar>(
    matrix: &CsrMatrix<T>,
    order: &[u32],
    active_n: u32,
    x: &DenseMatrix<T>,
    y: &DenseMatrix<T>,
) -> SparseResult<()> {
    if active_n > matrix.rows() || matrix.cols() as usize > order.len() {
        return Err(SparseError::ShapeMismatch {
            left: (matrix.rows(), matrix.cols()),
            right: (active_n, order.len() as u32),
        });
    }
    if x.rows() as usize != order.len() || y.rows() != x.rows() || y.cols() != x.cols() {
        return Err(SparseError::ShapeMismatch {
            left: (x.rows(), x.cols()),
            right: (y.rows(), y.cols()),
        });
    }
    Ok(())
}

/// Serial fused level accumulate: `y[order[p]] += Σ_c B[p, c]·x[order[c]]`
/// for every position `p` in the active prefix.
///
/// `matrix` is the level's matrix in position coordinates, `order` the
/// level arrangement's position→vertex map ([`crate::Permutation::order`]),
/// and `active_n` its active-prefix length; rows at positions `≥ active_n`
/// must be structurally empty. `k_block` is the RHS cache-block width
/// (clamped to at least 1; see [`DEFAULT_K_BLOCK`]).
pub fn fused_level_acc<T: Scalar>(
    matrix: &CsrMatrix<T>,
    order: &[u32],
    active_n: u32,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
    k_block: usize,
) -> SparseResult<()> {
    check_level_shapes(matrix, order, active_n, x, y)?;
    let k = x.cols() as usize;
    if k == 0 {
        return Ok(());
    }
    let kb = k_block.max(1).min(k);
    let mut acc = vec![T::ZERO; kb];
    for p in 0..active_n {
        let cols = matrix.row_indices(p);
        if cols.is_empty() {
            continue;
        }
        let vals = matrix.row_values(p);
        let out = y.row_mut(order[p as usize]);
        let mut j0 = 0usize;
        while j0 < k {
            let j1 = (j0 + kb).min(k);
            let blk = &mut acc[..j1 - j0];
            blk.fill(T::ZERO);
            for (&c, &v) in cols.iter().zip(vals) {
                let xr = &x.row(order[c as usize])[j0..j1];
                for (a, &xv) in blk.iter_mut().zip(xr) {
                    *a += v * xv;
                }
            }
            for (o, &a) in out[j0..j1].iter_mut().zip(blk.iter()) {
                *o += a;
            }
            j0 = j1;
        }
    }
    Ok(())
}

/// Rayon-parallel fused level accumulate, splitting over output row blocks.
///
/// Identical arithmetic to [`fused_level_acc`] — each output row is owned
/// by exactly one task (positions and vertices are in bijection, so no two
/// active positions scatter to the same `y` row), and the per-row operation
/// sequence is unchanged, which keeps the parallel variant bit-identical to
/// the serial one. `positions` is the vertex→position map
/// ([`crate::Permutation::positions`]) matching `order`.
#[allow(clippy::too_many_arguments)]
pub fn fused_level_acc_parallel<T: Scalar>(
    matrix: &CsrMatrix<T>,
    positions: &[u32],
    order: &[u32],
    active_n: u32,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
    k_block: usize,
    rows_per_chunk: usize,
) -> SparseResult<()> {
    check_level_shapes(matrix, order, active_n, x, y)?;
    if positions.len() != order.len() {
        return Err(SparseError::ShapeMismatch {
            left: (positions.len() as u32, 1),
            right: (order.len() as u32, 1),
        });
    }
    let k = x.cols() as usize;
    if k == 0 {
        return Ok(());
    }
    let kb = k_block.max(1).min(k);
    let chunk_rows = rows_per_chunk.max(1);
    y.data_mut()
        .par_chunks_mut(chunk_rows * k)
        .enumerate()
        .for_each(|(chunk, rows)| {
            let v0 = chunk * chunk_rows;
            let mut acc = vec![T::ZERO; kb];
            for (dv, out) in rows.chunks_mut(k).enumerate() {
                let p = positions[v0 + dv];
                if p >= active_n {
                    continue;
                }
                let cols = matrix.row_indices(p);
                if cols.is_empty() {
                    continue;
                }
                let vals = matrix.row_values(p);
                let mut j0 = 0usize;
                while j0 < k {
                    let j1 = (j0 + kb).min(k);
                    let blk = &mut acc[..j1 - j0];
                    blk.fill(T::ZERO);
                    for (&c, &v) in cols.iter().zip(vals) {
                        let xr = &x.row(order[c as usize])[j0..j1];
                        for (a, &xv) in blk.iter_mut().zip(xr) {
                            *a += v * xv;
                        }
                    }
                    for (o, &a) in out[j0..j1].iter_mut().zip(blk.iter()) {
                        *o += a;
                    }
                    j0 = j1;
                }
            }
        });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permutation::Permutation;
    use crate::spmm;
    use crate::CooMatrix;

    /// A small "level": a banded matrix in position coordinates with an
    /// active prefix, plus a non-trivial arrangement.
    fn level(n: u32, active_n: u32) -> (CsrMatrix<f64>, Permutation) {
        let mut coo = CooMatrix::new(n, n);
        for p in 0..active_n {
            for q in p.saturating_sub(2)..(p + 3).min(active_n) {
                coo.push(p, q, ((p * 31 + q * 7) % 13) as f64 - 6.0)
                    .unwrap();
            }
        }
        let pos: Vec<u32> = (0..n).map(|v| (v * 7 + 3) % n).collect();
        (coo.to_csr(), Permutation::from_positions(pos).unwrap())
    }

    fn unfused(
        matrix: &CsrMatrix<f64>,
        perm: &Permutation,
        x: &DenseMatrix<f64>,
        y: &mut DenseMatrix<f64>,
    ) {
        let px = perm.apply_rows(x).unwrap();
        let yi = spmm::spmm(matrix, &px).unwrap();
        let back = perm.unapply_rows(&yi).unwrap();
        y.add_assign(&back).unwrap();
    }

    #[test]
    fn fused_bit_matches_unfused() {
        let (m, perm) = level(40, 17);
        let x = DenseMatrix::from_fn(40, 9, |r, c| ((r * 9 + c) % 11) as f64 / 3.0 - 1.5);
        let mut want = DenseMatrix::zeros(40, 9);
        unfused(&m, &perm, &x, &mut want);
        for k_block in [1, 2, 4, 64] {
            let mut got = DenseMatrix::zeros(40, 9);
            fused_level_acc(&m, perm.order(), 17, &x, &mut got, k_block).unwrap();
            assert_eq!(got, want, "k_block={k_block}");
        }
    }

    #[test]
    fn parallel_bit_matches_serial() {
        let (m, perm) = level(64, 23);
        let x = DenseMatrix::from_fn(64, 5, |r, c| ((r * 5 + c) % 17) as f64 * 0.25 - 2.0);
        let mut serial = DenseMatrix::zeros(64, 5);
        fused_level_acc(&m, perm.order(), 23, &x, &mut serial, DEFAULT_K_BLOCK).unwrap();
        for rows_per_chunk in [1, 7, 64] {
            let mut par = DenseMatrix::zeros(64, 5);
            fused_level_acc_parallel(
                &m,
                perm.positions(),
                perm.order(),
                23,
                &x,
                &mut par,
                DEFAULT_K_BLOCK,
                rows_per_chunk,
            )
            .unwrap();
            assert_eq!(par, serial, "rows_per_chunk={rows_per_chunk}");
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let (m, perm) = level(20, 20);
        let x = DenseMatrix::from_fn(20, 3, |r, c| (r + c) as f64);
        let mut y = DenseMatrix::from_fn(20, 3, |_, _| 10.0);
        let mut want = DenseMatrix::from_fn(20, 3, |_, _| 10.0);
        unfused(&m, &perm, &x, &mut want);
        fused_level_acc(&m, perm.order(), 20, &x, &mut y, DEFAULT_K_BLOCK).unwrap();
        assert_eq!(y, want);
    }

    #[test]
    fn f32_kernel_runs() {
        let (m64, perm) = level(16, 9);
        let m = CsrMatrix::<f32>::from_raw_unchecked(
            m64.rows(),
            m64.cols(),
            m64.indptr().to_vec(),
            m64.indices().to_vec(),
            m64.values().iter().map(|&v| v as f32).collect(),
        );
        let x = DenseMatrix::<f32>::from_fn(16, 4, |r, c| (r * 4 + c) as f32);
        let mut y = DenseMatrix::<f32>::zeros(16, 4);
        fused_level_acc(&m, perm.order(), 9, &x, &mut y, DEFAULT_K_BLOCK).unwrap();
        // Integer-valued data stays exact in f32 at this scale.
        let x64 = DenseMatrix::from_fn(16, 4, |r, c| (r * 4 + c) as f64);
        let mut want = DenseMatrix::zeros(16, 4);
        unfused(&m64, &perm, &x64, &mut want);
        for v in 0..16u32 {
            for j in 0..4u32 {
                assert_eq!(y.get(v, j) as f64, want.get(v, j));
            }
        }
    }

    #[test]
    fn zero_width_rhs_is_a_no_op() {
        let (m, perm) = level(10, 5);
        let x = DenseMatrix::<f64>::zeros(10, 0);
        let mut y = DenseMatrix::<f64>::zeros(10, 0);
        fused_level_acc(&m, perm.order(), 5, &x, &mut y, DEFAULT_K_BLOCK).unwrap();
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (m, perm) = level(12, 6);
        let x = DenseMatrix::<f64>::zeros(11, 2);
        let mut y = DenseMatrix::<f64>::zeros(11, 2);
        assert!(fused_level_acc(&m, perm.order(), 6, &x, &mut y, 64).is_err());
        let x = DenseMatrix::<f64>::zeros(12, 2);
        let mut y = DenseMatrix::<f64>::zeros(12, 3);
        assert!(fused_level_acc(&m, perm.order(), 6, &x, &mut y, 64).is_err());
        let mut y = DenseMatrix::<f64>::zeros(12, 2);
        assert!(fused_level_acc(&m, perm.order(), 13, &x, &mut y, 64).is_err());
        assert!(fused_level_acc_parallel(&m, &[0; 5], perm.order(), 6, &x, &mut y, 64, 8).is_err());
    }
}
