//! Sparse and dense matrix substrate for the arrow matrix decomposition.
//!
//! This crate provides the matrix containers and kernels everything else is
//! built on:
//!
//! * [`CooMatrix`] — a coordinate-format builder for sparse matrices,
//! * [`CsrMatrix`] — compressed sparse row storage with serial and
//!   rayon-parallel SpMM kernels,
//! * [`DenseMatrix`] — row-major dense storage for the tall-skinny feature
//!   matrices `X ∈ R^{n×k}` of the paper,
//! * [`Permutation`] — vertex/row permutations `π` and the symmetric
//!   reorderings `PᵀAP` used throughout the decomposition,
//! * [`DeltaBuilder`] — the coalescing `ΔA` accumulator of the streaming
//!   update layer, with [`ops::apply_delta`] folding a delta into a base,
//! * fused active-prefix level kernels ([`kernel`]) — the serving hot path
//!   that permutes, band-multiplies and accumulates in one cache-blocked
//!   pass, generic over [`Scalar`] with a [`Dtype`] selector for f32
//!   half-bandwidth serving,
//! * bandwidth and arrow-width measures ([`band`]).
//!
//! Conventions follow the paper (Gianinazzi et al., PPoPP'24): matrices are
//! square `n × n` adjacency matrices unless stated otherwise, indices are
//! `u32`, and a matrix has *arrow-width* `b` if all nonzeros `(i, j)` with
//! `i > b` and `j > b` satisfy `|i − j| ≤ b`.

pub mod band;
pub mod coo;
pub mod csr;
pub mod delta;
pub mod dense;
pub mod error;
pub mod io;
pub mod kernel;
pub mod ops;
pub mod permutation;
pub mod scalar;
pub mod spmm;

pub use band::{arrow_width, bandwidth};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use delta::DeltaBuilder;
pub use dense::DenseMatrix;
pub use error::{SparseError, SparseResult};
pub use permutation::Permutation;
pub use scalar::{Dtype, Scalar};
