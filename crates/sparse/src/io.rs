//! Matrix Market (`.mtx`) import/export.
//!
//! The paper's datasets come from the SuiteSparse collection, which is
//! distributed in Matrix Market coordinate format; this module lets the
//! library ingest real SuiteSparse files when they are available and
//! export synthetic stand-ins for inspection with standard tools.
//!
//! Supported: `matrix coordinate real/integer/pattern general/symmetric`.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use std::io::{BufRead, Write};

/// Parses a Matrix Market coordinate stream into a COO matrix.
///
/// Symmetric files are expanded (both triangles materialised); `pattern`
/// files get unit values. One-based indices are converted to zero-based.
pub fn read_matrix_market<R: BufRead>(reader: R) -> SparseResult<CooMatrix<f64>> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::InvalidCsr("empty Matrix Market stream".into()))?
        .map_err(io_err)?;
    let h: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" || h[2] != "coordinate" {
        return Err(SparseError::InvalidCsr(format!(
            "unsupported Matrix Market header: {header}"
        )));
    }
    let pattern = h[3] == "pattern";
    if !(pattern || h[3] == "real" || h[3] == "integer") {
        return Err(SparseError::InvalidCsr(format!(
            "unsupported field type {}",
            h[3]
        )));
    }
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(SparseError::InvalidCsr(format!(
                "unsupported symmetry {other}"
            )))
        }
    };
    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(io_err)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::InvalidCsr("missing size line".into()))?;
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::InvalidCsr(format!(
            "bad size line: {size_line}"
        )));
    }
    let rows: u32 = parse(dims[0])?;
    let cols: u32 = parse(dims[1])?;
    let nnz: usize = parse(dims[2])?;
    let mut coo = CooMatrix::with_capacity(rows, cols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(io_err)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() < 2 {
            return Err(SparseError::InvalidCsr(format!("bad entry line: {t}")));
        }
        let r: u32 = parse::<u32>(parts[0])?
            .checked_sub(1)
            .ok_or_else(|| SparseError::InvalidCsr("zero row index in 1-based file".into()))?;
        let c: u32 = parse::<u32>(parts[1])?
            .checked_sub(1)
            .ok_or_else(|| SparseError::InvalidCsr("zero col index in 1-based file".into()))?;
        let v: f64 = if pattern {
            1.0
        } else {
            parts
                .get(2)
                .ok_or_else(|| SparseError::InvalidCsr(format!("missing value: {t}")))?
                .parse()
                .map_err(|e| SparseError::InvalidCsr(format!("bad value in '{t}': {e}")))?
        };
        coo.push(r, c, v)?;
        if symmetric && r != c {
            coo.push(c, r, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::InvalidCsr(format!(
            "entry count mismatch: header says {nnz}, file has {seen}"
        )));
    }
    Ok(coo)
}

/// Writes a CSR matrix in `general real` coordinate format.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix<f64>, mut w: W) -> SparseResult<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(w, "% written by arrow-matrix").map_err(io_err)?;
    writeln!(w, "{} {} {}", a.rows(), a.cols(), a.nnz()).map_err(io_err)?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {v}", r + 1, c + 1).map_err(io_err)?;
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str) -> SparseResult<T>
where
    T::Err: std::fmt::Display,
{
    s.parse::<T>()
        .map_err(|e| SparseError::InvalidCsr(format!("cannot parse '{s}': {e}")))
}

fn io_err(e: std::io::Error) -> SparseError {
    SparseError::InvalidCsr(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_str(s: &str) -> SparseResult<CooMatrix<f64>> {
        read_matrix_market(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn general_real_roundtrip() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 2.5).unwrap();
        coo.push(2, 3, -1.0).unwrap();
        coo.push(1, 0, 7.0).unwrap();
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let back = read_matrix_market(BufReader::new(buf.as_slice()))
            .unwrap()
            .to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn symmetric_expansion() {
        let s = "%%MatrixMarket matrix coordinate real symmetric\n\
                 % a comment\n\
                 3 3 2\n\
                 2 1 4.0\n\
                 3 3 1.0\n";
        let a = parse_str(s).unwrap().to_csr();
        assert_eq!(a.nnz(), 3); // mirrored off-diagonal + diagonal once
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(2, 2), 1.0);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let s = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let a = parse_str(s).unwrap().to_csr();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn integer_field_accepted() {
        let s = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 9\n";
        let a = parse_str(s).unwrap().to_csr();
        assert_eq!(a.get(0, 0), 9.0);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse_str("").is_err());
        assert!(parse_str("%%MatrixMarket matrix array real general\n1 1\n1.0\n").is_err());
        assert!(parse_str("%%MatrixMarket matrix coordinate real general\n2 2\n").is_err());
        assert!(
            parse_str("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n").is_err(),
            "zero-based index must be rejected"
        );
        assert!(
            parse_str("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n").is_err(),
            "count mismatch must be rejected"
        );
        assert!(
            parse_str("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n").is_err(),
            "out-of-range index must be rejected"
        );
        assert!(
            parse_str("%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n").is_err()
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let s = "%%MatrixMarket matrix coordinate real general\n\
                 % c1\n\n% c2\n\
                 2 2 1\n\n\
                 1 2 3.5\n% trailing\n";
        let a = parse_str(s).unwrap().to_csr();
        assert_eq!(a.get(0, 1), 3.5);
    }
}
