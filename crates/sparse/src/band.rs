//! Bandwidth and arrow-width measures (§2 and §4 of the paper).
//!
//! * A matrix has **bandwidth** `w` if every nonzero `(i, j)` satisfies
//!   `|i − j| ≤ w`.
//! * A matrix has **arrow-width** `b` if every nonzero `(i, j)` with
//!   `i ≥ b` *and* `j ≥ b` satisfies `|i − j| ≤ b` (the first `b` rows and
//!   columns are unconstrained — the "arrow shaft").
//!
//! Arrow-width generalises arrowhead matrices (`b = 1`) and is never larger
//! than the bandwidth. The gap can be polynomial: a star graph has
//! bandwidth `Ω(n)` under every ordering but arrow-width `1`.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Bandwidth of the matrix: `max |i − j|` over stored entries (0 for
/// diagonal or empty matrices).
pub fn bandwidth<T: Scalar>(a: &CsrMatrix<T>) -> u32 {
    let mut w = 0u32;
    for r in 0..a.rows() {
        for &c in a.row_indices(r) {
            let d = r.abs_diff(c);
            if d > w {
                w = d;
            }
        }
    }
    w
}

/// Smallest `b` such that `a` has arrow-width `b`.
///
/// Runs a binary search over `b` against [`is_arrow_width`]; `O(nnz log n)`.
pub fn arrow_width<T: Scalar>(a: &CsrMatrix<T>) -> u32 {
    if a.nnz() == 0 {
        return 0;
    }
    let (mut lo, mut hi) = (0u32, bandwidth(a));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if is_arrow_width(a, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// `true` if every nonzero `(i, j)` with `i ≥ b` and `j ≥ b` satisfies
/// `|i − j| ≤ b` — the definition in §1 of the paper (with 0-based indices:
/// entries in the first `b` rows or columns are exempt).
pub fn is_arrow_width<T: Scalar>(a: &CsrMatrix<T>, b: u32) -> bool {
    for r in b..a.rows() {
        for &c in a.row_indices(r) {
            if c >= b && r.abs_diff(c) > b {
                return false;
            }
        }
    }
    true
}

/// Fraction of stored entries within a band of half-width `w` around the
/// diagonal. Used to evaluate Lemma 3 empirically.
pub fn in_band_fraction<T: Scalar>(a: &CsrMatrix<T>, w: u32) -> f64 {
    if a.nnz() == 0 {
        return 1.0;
    }
    let mut inside = 0usize;
    for r in 0..a.rows() {
        for &c in a.row_indices(r) {
            if r.abs_diff(c) <= w {
                inside += 1;
            }
        }
    }
    inside as f64 / a.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn from_entries(n: u32, entries: &[(u32, u32)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c) in entries {
            coo.push(r, c, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn bandwidth_of_tridiagonal() {
        let m = from_entries(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        assert_eq!(bandwidth(&m), 1);
        assert_eq!(arrow_width(&m), 1);
    }

    #[test]
    fn bandwidth_of_empty_and_diagonal() {
        let empty = CsrMatrix::<f64>::zeros(5, 5);
        assert_eq!(bandwidth(&empty), 0);
        assert_eq!(arrow_width(&empty), 0);
        let diag = CsrMatrix::<f64>::identity(5);
        assert_eq!(bandwidth(&diag), 0);
        assert_eq!(arrow_width(&diag), 0);
    }

    #[test]
    fn star_has_high_bandwidth_low_arrow_width() {
        // Star centred at vertex 0 in natural order: entries (0, j), (j, 0).
        let n = 64;
        let entries: Vec<(u32, u32)> = (1..n).flat_map(|j| [(0u32, j), (j, 0u32)]).collect();
        let m = from_entries(n, &entries);
        assert_eq!(bandwidth(&m), n - 1);
        assert_eq!(arrow_width(&m), 1);
    }

    #[test]
    fn arrow_width_counts_band_beyond_arms() {
        // Arm entries in first 2 rows/cols plus a band entry (5, 8): |5-8| = 3 > 2.
        let m = from_entries(10, &[(0, 9), (9, 0), (1, 7), (5, 8), (8, 5)]);
        assert!(is_arrow_width(&m, 3));
        assert!(!is_arrow_width(&m, 2));
        assert_eq!(arrow_width(&m), 3);
    }

    #[test]
    fn arrow_width_exempts_first_b_rows_and_cols() {
        let m = from_entries(10, &[(0, 9), (9, 0)]);
        assert!(is_arrow_width(&m, 1));
        assert_eq!(arrow_width(&m), 1);
    }

    #[test]
    fn in_band_fraction_measures_band() {
        let m = from_entries(6, &[(0, 1), (1, 2), (0, 5)]);
        assert!((in_band_fraction(&m, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(in_band_fraction(&m, 5), 1.0);
        let empty = CsrMatrix::<f64>::zeros(3, 3);
        assert_eq!(in_band_fraction(&empty, 0), 1.0);
    }

    #[test]
    fn arrow_width_is_at_most_bandwidth() {
        let m = from_entries(8, &[(2, 6), (6, 2), (3, 4), (0, 7)]);
        assert!(arrow_width(&m) <= bandwidth(&m));
    }
}
