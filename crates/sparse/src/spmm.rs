//! Sparse-times-dense multiplication kernels (CSRMM).
//!
//! These are the local, per-rank kernels of the paper's distributed
//! algorithms — the role played by cuSPARSE CSRMM in the original
//! evaluation. The parallel variant splits over output rows with rayon,
//! which is the natural decomposition for CSR × row-major dense.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::scalar::{Dtype, Scalar};
use rayon::prelude::*;

/// Serial `Y = A · X` for CSR `A` and dense `X`.
pub fn spmm<T: Scalar>(a: &CsrMatrix<T>, x: &DenseMatrix<T>) -> SparseResult<DenseMatrix<T>> {
    check_shapes(a, x)?;
    let mut y = DenseMatrix::zeros(a.rows(), x.cols());
    spmm_into(a, x, &mut y);
    Ok(y)
}

/// Serial `Y += A · X` into a pre-allocated output (no allocation).
pub fn spmm_acc<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
) -> SparseResult<()> {
    check_shapes(a, x)?;
    if y.rows() != a.rows() || y.cols() != x.cols() {
        return Err(SparseError::ShapeMismatch {
            left: (a.rows(), x.cols()),
            right: (y.rows(), y.cols()),
        });
    }
    spmm_into(a, x, y);
    Ok(())
}

fn spmm_into<T: Scalar>(a: &CsrMatrix<T>, x: &DenseMatrix<T>, y: &mut DenseMatrix<T>) {
    let k = x.cols() as usize;
    for r in 0..a.rows() {
        let out = y.row_mut(r);
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            let xr = x.row(c);
            for j in 0..k {
                out[j] += v * xr[j];
            }
        }
    }
}

/// Rayon-parallel `Y = A · X`, splitting work over output rows.
pub fn spmm_parallel<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
) -> SparseResult<DenseMatrix<T>> {
    check_shapes(a, x)?;
    let k = x.cols() as usize;
    let n = a.rows() as usize;
    let mut data = vec![T::ZERO; n * k];
    data.par_chunks_mut(k).enumerate().for_each(|(r, out)| {
        let r = r as u32;
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            let xr = x.row(c);
            for j in 0..k {
                out[j] += v * xr[j];
            }
        }
    });
    DenseMatrix::from_vec(a.rows(), x.cols(), data)
}

/// Serial `Y += A · X` at a selectable serving precision, over `f64`
/// containers.
///
/// `Dtype::F64` is exactly [`spmm_acc`]. `Dtype::F32` emulates the
/// half-bandwidth kernel of an f32 serving rank: matrix values and gathered
/// `x` entries are narrowed to `f32` and multiplied in `f32`, while the
/// running sums stay `f64` — which is the wire format the simulated machine
/// transports between ranks, so cross-rank reduction order and precision
/// are unchanged. Each emulated product therefore carries relative error at
/// most `(1 + u)³ − 1` with `u = 2⁻²⁴` (narrow `a`, narrow `x`, round the
/// product); see the error-bound helpers in `arrow-core` for the summed
/// per-entry bound.
pub fn spmm_acc_dtype(
    a: &CsrMatrix<f64>,
    x: &DenseMatrix<f64>,
    y: &mut DenseMatrix<f64>,
    dtype: Dtype,
) -> SparseResult<()> {
    if dtype == Dtype::F64 {
        return spmm_acc(a, x, y);
    }
    check_shapes(a, x)?;
    if y.rows() != a.rows() || y.cols() != x.cols() {
        return Err(SparseError::ShapeMismatch {
            left: (a.rows(), x.cols()),
            right: (y.rows(), y.cols()),
        });
    }
    let k = x.cols() as usize;
    for r in 0..a.rows() {
        let out = y.row_mut(r);
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            let v32 = v as f32;
            let xr = x.row(c);
            for j in 0..k {
                out[j] += (v32 * xr[j] as f32) as f64;
            }
        }
    }
    Ok(())
}

/// Allocating variant of [`spmm_acc_dtype`]: `Y = A · X` at `dtype`.
pub fn spmm_dtype(
    a: &CsrMatrix<f64>,
    x: &DenseMatrix<f64>,
    dtype: Dtype,
) -> SparseResult<DenseMatrix<f64>> {
    let mut y = DenseMatrix::zeros(a.rows(), x.cols());
    spmm_acc_dtype(a, x, &mut y, dtype)?;
    Ok(y)
}

/// Flop count of `A · X`: 2 · nnz(A) · k, the quantity charged to the
/// simulated compute clock by the distributed algorithms.
pub fn spmm_flops<T: Scalar>(a: &CsrMatrix<T>, k: u32) -> f64 {
    2.0 * a.nnz() as f64 * k as f64
}

/// Dense reference multiply used by tests: `O(n² k)`, only for tiny inputs.
pub fn spmm_dense_reference<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
) -> SparseResult<DenseMatrix<T>> {
    check_shapes(a, x)?;
    let mut y = DenseMatrix::zeros(a.rows(), x.cols());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let v = a.get(r, c);
            if v != T::ZERO {
                for j in 0..x.cols() {
                    let cur = y.get(r, j);
                    y.set(r, j, cur + v * x.get(c, j));
                }
            }
        }
    }
    Ok(y)
}

fn check_shapes<T: Scalar>(a: &CsrMatrix<T>, x: &DenseMatrix<T>) -> SparseResult<()> {
    if a.cols() != x.rows() {
        return Err(SparseError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (x.rows(), x.cols()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn small() -> (CsrMatrix<f64>, DenseMatrix<f64>) {
        // A = [0 1; 2 3], X = [1 2; 3 4]
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let x = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        (coo.to_csr(), x)
    }

    #[test]
    fn serial_matches_hand_computation() {
        let (a, x) = small();
        let y = spmm(&a, &x).unwrap();
        // Y = [3 4; 11 16]
        assert_eq!(y.data(), &[3.0, 4.0, 11.0, 16.0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let (a, x) = small();
        let ys = spmm(&a, &x).unwrap();
        let yp = spmm_parallel(&a, &x).unwrap();
        assert_eq!(ys, yp);
    }

    #[test]
    fn dense_reference_matches() {
        let (a, x) = small();
        assert_eq!(spmm(&a, &x).unwrap(), spmm_dense_reference(&a, &x).unwrap());
    }

    #[test]
    fn accumulating_variant_adds() {
        let (a, x) = small();
        let mut y = DenseMatrix::from_fn(2, 2, |_, _| 100.0);
        spmm_acc(&a, &x, &mut y).unwrap();
        assert_eq!(y.data(), &[103.0, 104.0, 111.0, 116.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (a, _) = small();
        let bad = DenseMatrix::<f64>::zeros(3, 2);
        assert!(spmm(&a, &bad).is_err());
        let mut y = DenseMatrix::<f64>::zeros(3, 2);
        let x = DenseMatrix::<f64>::zeros(2, 2);
        assert!(spmm_acc(&a, &x, &mut y).is_err());
    }

    #[test]
    fn rectangular_spmm() {
        // 2x3 sparse times 3x1 dense
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        let a = coo.to_csr();
        let x = DenseMatrix::from_vec(3, 1, vec![5.0, 6.0, 7.0]).unwrap();
        let y = spmm(&a, &x).unwrap();
        assert_eq!(y.data(), &[7.0, 10.0]);
    }

    #[test]
    fn empty_matrix_gives_zero_output() {
        let a = CsrMatrix::<f64>::zeros(4, 4);
        let x = DenseMatrix::from_fn(4, 3, |r, c| (r + c) as f64);
        let y = spmm(&a, &x).unwrap();
        assert_eq!(y.frobenius_norm(), 0.0);
    }

    #[test]
    fn flop_count() {
        let (a, _) = small();
        assert_eq!(spmm_flops(&a, 2), 2.0 * 3.0 * 2.0);
    }

    #[test]
    fn dtype_f64_is_exact_spmm() {
        let (a, x) = small();
        assert_eq!(
            spmm_dtype(&a, &x, Dtype::F64).unwrap(),
            spmm(&a, &x).unwrap()
        );
    }

    #[test]
    fn dtype_f32_exact_on_small_integers() {
        // Integer data well inside f32's 24-bit mantissa is exact.
        let (a, x) = small();
        assert_eq!(
            spmm_dtype(&a, &x, Dtype::F32).unwrap(),
            spmm(&a, &x).unwrap()
        );
    }

    #[test]
    fn dtype_f32_narrows_products() {
        // 0.1 is not representable in f32, so the emulated product must
        // differ from the f64 one — and match the hand-narrowed value.
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 0.1).unwrap();
        let a = coo.to_csr();
        let x = DenseMatrix::from_vec(1, 1, vec![0.3]).unwrap();
        let y = spmm_dtype(&a, &x, Dtype::F32).unwrap();
        assert_eq!(y.get(0, 0), (0.1f32 * 0.3f32) as f64);
        assert_ne!(y.get(0, 0), 0.1 * 0.3);
    }

    #[test]
    fn dtype_shape_mismatch_rejected() {
        let (a, _) = small();
        let bad = DenseMatrix::<f64>::zeros(3, 2);
        assert!(spmm_dtype(&a, &bad, Dtype::F32).is_err());
        let x = DenseMatrix::<f64>::zeros(2, 2);
        let mut y = DenseMatrix::<f64>::zeros(3, 2);
        assert!(spmm_acc_dtype(&a, &x, &mut y, Dtype::F32).is_err());
    }
}
