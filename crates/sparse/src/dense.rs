//! Row-major dense matrices for the tall-skinny feature operands.
//!
//! The paper's feature matrix `X ∈ R^{n×k}` with `k ≪ n` is stored
//! row-major so that a block of rows (the unit every distributed algorithm
//! communicates) is contiguous and can be sent without gather/scatter
//! copies.

use crate::error::{SparseError, SparseResult};
use crate::scalar::Scalar;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T: Scalar = f64> {
    rows: u32,
    cols: u32,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: u32, cols: u32) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows as usize * cols as usize],
        }
    }

    /// Builds from a row-major data vector.
    pub fn from_vec(rows: u32, cols: u32, data: Vec<T>) -> SparseResult<Self> {
        if data.len() != rows as usize * cols as usize {
            return Err(SparseError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len() as u32, 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: u32, cols: u32, mut f: impl FnMut(u32, u32) -> T) -> Self {
        let mut data = Vec::with_capacity(rows as usize * cols as usize);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes `self` and returns the row-major storage.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> T {
        self.data[r as usize * self.cols as usize + c as usize]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: u32, c: u32, v: T) {
        self.data[r as usize * self.cols as usize + c as usize] = v;
    }

    /// Row `r` as a contiguous slice of length `cols`.
    #[inline]
    pub fn row(&self, r: u32) -> &[T] {
        let k = self.cols as usize;
        &self.data[r as usize * k..(r as usize + 1) * k]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: u32) -> &mut [T] {
        let k = self.cols as usize;
        &mut self.data[r as usize * k..(r as usize + 1) * k]
    }

    /// Contiguous block of rows `r0..r1` as a slice.
    #[inline]
    pub fn rows_slice(&self, r0: u32, r1: u32) -> &[T] {
        let k = self.cols as usize;
        &self.data[r0 as usize * k..r1 as usize * k]
    }

    /// Copies rows `r0..r1` into a new matrix.
    pub fn row_block(&self, r0: u32, r1: u32) -> Self {
        assert!(r0 <= r1 && r1 <= self.rows);
        Self {
            rows: r1 - r0,
            cols: self.cols,
            data: self.rows_slice(r0, r1).to_vec(),
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Self) -> SparseResult<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Applies an element-wise function (the paper's `σ`) in place.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T + Sync) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm (as `f64`).
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.to_f64() * v.to_f64())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Self) -> SparseResult<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max))
    }

    /// Normalises every column to unit Euclidean norm (no-op on zero
    /// columns). Used by the power-iteration example.
    #[allow(clippy::needless_range_loop)] // strided access, index loops are clearer
    pub fn normalize_columns(&mut self) {
        let k = self.cols as usize;
        let mut norms = vec![0.0f64; k];
        for r in 0..self.rows as usize {
            for c in 0..k {
                let v = self.data[r * k + c].to_f64();
                norms[c] += v * v;
            }
        }
        for n in &mut norms {
            *n = n.sqrt();
        }
        for r in 0..self.rows as usize {
            for c in 0..k {
                if norms[c] > 0.0 {
                    let v = self.data[r * k + c].to_f64() / norms[c];
                    self.data[r * k + c] = T::from_f64(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::<f64>::zeros(3, 2);
        m.set(1, 1, 4.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row(1), &[0.0, 4.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0f64; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0f64; 4]).is_ok());
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_block_copies_contiguously() {
        let m = DenseMatrix::from_fn(4, 2, |r, _| r as f64);
        let b = m.row_block(1, 3);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn add_assign_and_mismatch() {
        let mut a = DenseMatrix::from_fn(2, 2, |_, _| 1.0);
        let b = DenseMatrix::from_fn(2, 2, |_, _| 2.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        let c = DenseMatrix::<f64>::zeros(3, 2);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn map_inplace_applies_sigma() {
        let mut a = DenseMatrix::from_fn(2, 2, |r, c| (r as f64) - (c as f64));
        a.map_inplace(|v| v.max(0.0)); // ReLU
        assert_eq!(a.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn norms() {
        let m = DenseMatrix::from_vec(2, 1, vec![3.0f64, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        let mut n = m.clone();
        n.normalize_columns();
        assert!((n.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((n.get(1, 0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_column_is_noop() {
        let mut m = DenseMatrix::<f64>::zeros(3, 2);
        m.normalize_columns();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn max_abs_diff() {
        let a = DenseMatrix::from_fn(2, 2, |_, _| 1.0);
        let mut b = a.clone();
        b.set(1, 0, 1.25);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.25);
    }
}
