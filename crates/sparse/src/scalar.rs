//! Minimal numeric trait for matrix values.
//!
//! The distributed code paths in the workspace fix the value type to `f64`,
//! but the containers are generic so the library is usable with `f32` (for
//! example to halve the memory footprint of a feature matrix).

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Numeric element type of sparse and dense matrices.
///
/// The bound set is intentionally small: what the SpMM kernels, reductions
/// and validation code need, and nothing more.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Absolute value, used by approximate comparisons in tests and
    /// verification helpers.
    fn abs(self) -> Self;

    /// Lossy conversion from `f64`, used by generators.
    fn from_f64(v: f64) -> Self;

    /// Lossy conversion to `f64`, used by statistics.
    fn to_f64(self) -> f64;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(vals: &[T]) -> T {
        vals.iter().copied().sum()
    }

    #[test]
    fn f64_roundtrip() {
        assert_eq!(f64::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
    }

    #[test]
    fn f32_roundtrip() {
        assert_eq!(f32::from_f64(0.25), 0.25f32);
        assert_eq!(f32::ONE.to_f64(), 1.0);
    }

    #[test]
    fn generic_code_compiles_for_both() {
        assert_eq!(generic_sum(&[1.0f64, 2.0, 3.0]), 6.0);
        assert_eq!(generic_sum(&[1.0f32, 2.0]), 3.0);
    }

    #[test]
    fn abs_behaviour() {
        assert_eq!((-2.0f64).abs(), 2.0);
        assert_eq!((-2.0f32).abs(), 2.0);
    }
}
