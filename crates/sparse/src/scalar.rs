//! Minimal numeric trait for matrix values.
//!
//! The distributed code paths in the workspace fix the value type to `f64`,
//! but the containers are generic so the library is usable with `f32` (for
//! example to halve the memory footprint of a feature matrix).

use std::fmt::{self, Debug};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Serving-precision selector: which [`Scalar`] type a multiply runs in.
///
/// `F64` is the exact default used everywhere the paper's algorithms are
/// verified bit-for-bit. `F32` halves the bandwidth of every multiply (and
/// the bytes moved by the distributed algorithms' cost model) at the price
/// of a bounded rounding error — see the f32 error-bound helpers in
/// `arrow-core` for the derived bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dtype {
    /// 32-bit floats: half the bytes per value, unit roundoff `2⁻²⁴`.
    F32,
    /// 64-bit floats: the exact reference precision.
    #[default]
    F64,
}

impl Dtype {
    /// Bytes per matrix value at this precision.
    pub const fn bytes(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F64 => 8,
        }
    }

    /// Unit roundoff `u` (half the machine epsilon) of this precision.
    pub const fn unit_roundoff(self) -> f64 {
        match self {
            Dtype::F32 => 5.960_464_477_539_063e-8,    // 2⁻²⁴
            Dtype::F64 => 1.110_223_024_625_156_5e-16, // 2⁻⁵³
        }
    }

    /// Canonical lowercase name (`"f32"` / `"f64"`).
    pub const fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }

    /// Parses the canonical names, e.g. from a `--dtype` CLI flag.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Dtype::F32),
            "f64" => Some(Dtype::F64),
            _ => None,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Numeric element type of sparse and dense matrices.
///
/// The bound set is intentionally small: what the SpMM kernels, reductions
/// and validation code need, and nothing more.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Absolute value, used by approximate comparisons in tests and
    /// verification helpers.
    fn abs(self) -> Self;

    /// Lossy conversion from `f64`, used by generators.
    fn from_f64(v: f64) -> Self;

    /// Lossy conversion to `f64`, used by statistics.
    fn to_f64(self) -> f64;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(vals: &[T]) -> T {
        vals.iter().copied().sum()
    }

    #[test]
    fn f64_roundtrip() {
        assert_eq!(f64::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
    }

    #[test]
    fn f32_roundtrip() {
        assert_eq!(f32::from_f64(0.25), 0.25f32);
        assert_eq!(f32::ONE.to_f64(), 1.0);
    }

    #[test]
    fn generic_code_compiles_for_both() {
        assert_eq!(generic_sum(&[1.0f64, 2.0, 3.0]), 6.0);
        assert_eq!(generic_sum(&[1.0f32, 2.0]), 3.0);
    }

    #[test]
    fn abs_behaviour() {
        assert_eq!((-2.0f64).abs(), 2.0);
        assert_eq!((-2.0f32).abs(), 2.0);
    }

    #[test]
    fn dtype_properties() {
        assert_eq!(Dtype::default(), Dtype::F64);
        assert_eq!(Dtype::F32.bytes(), 4);
        assert_eq!(Dtype::F64.bytes(), 8);
        assert_eq!(Dtype::F32.unit_roundoff(), (f32::EPSILON / 2.0) as f64);
        assert_eq!(Dtype::F64.unit_roundoff(), f64::EPSILON / 2.0);
        assert_eq!(Dtype::parse("f32"), Some(Dtype::F32));
        assert_eq!(Dtype::parse("f64"), Some(Dtype::F64));
        assert_eq!(Dtype::parse("f16"), None);
        assert_eq!(Dtype::F32.to_string(), "f32");
        assert_eq!(format!("{}", Dtype::F64), "f64");
    }
}
