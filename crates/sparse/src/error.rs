//! Error type shared across the sparse substrate.

use std::fmt;

/// Errors produced when constructing or combining matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: u32,
        /// Offending column index.
        col: u32,
        /// Number of rows of the matrix.
        rows: u32,
        /// Number of columns of the matrix.
        cols: u32,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (u32, u32),
        /// Shape of the right operand.
        right: (u32, u32),
    },
    /// A CSR invariant is violated (non-monotone `indptr`, length mismatch,
    /// or unsorted/duplicate column indices where they are required).
    InvalidCsr(String),
    /// The slice defining a permutation is not a bijection on `0..n`.
    InvalidPermutation(String),
    /// A fault injected by an armed `amd-chaos` failpoint (the string
    /// is the site name). Never produced in production: retry loops
    /// match on this variant so injected transients are retried while
    /// real structural errors still propagate.
    Injected(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) outside matrix of shape {rows}x{cols}"
            ),
            SparseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::InvalidCsr(msg) => write!(f, "invalid CSR structure: {msg}"),
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            SparseError::Injected(site) => write!(f, "injected fault at failpoint `{site}`"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience alias used across the crate.
pub type SparseResult<T> = Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_indices() {
        let err = SparseError::IndexOutOfBounds {
            row: 7,
            col: 9,
            rows: 4,
            cols: 4,
        };
        let s = err.to_string();
        assert!(s.contains("(7, 9)"));
        assert!(s.contains("4x4"));
    }

    #[test]
    fn display_shape_mismatch() {
        let err = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(err.to_string(), "shape mismatch: 2x3 vs 4x5");
    }

    #[test]
    fn error_trait_object_compatible() {
        let err: Box<dyn std::error::Error> = Box::new(SparseError::InvalidCsr("x".into()));
        assert!(err.to_string().contains("invalid CSR"));
    }
}
