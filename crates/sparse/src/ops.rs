//! Structural matrix algebra on CSR matrices: addition, subtraction,
//! transpose, and symmetrisation.
//!
//! The decomposition validator uses these to check `Σ P_π B Pᵀ_π = A`
//! exactly (the paper's defining identity in §4).

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use crate::scalar::Scalar;

/// `A + B` as a new CSR matrix.
pub fn add<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> SparseResult<CsrMatrix<T>> {
    merge(a, b, |x, y| x + y)
}

/// `A − B` as a new CSR matrix.
pub fn sub<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> SparseResult<CsrMatrix<T>> {
    merge(a, b, |x, y| x - y)
}

/// Folds an additive delta into a base matrix: `A + ΔA`, with positions
/// whose sum is exactly zero dropped from the result.
///
/// This is the compaction step of the streaming layer: merging is a
/// row-wise two-pointer walk (each row's entries combine in ascending
/// column order, one addition per shared position), so for a fixed pair
/// of operands the result is deterministic — the "fixed reduction order"
/// the corrected multiply path is verified against. Dropping exact zeros
/// means a delta that removes an edge really shrinks the structure.
pub fn apply_delta<T: Scalar>(
    a: &CsrMatrix<T>,
    delta: &CsrMatrix<T>,
) -> SparseResult<CsrMatrix<T>> {
    Ok(add(a, delta)?.prune_zeros())
}

fn merge<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    combine: impl Fn(T, T) -> T,
) -> SparseResult<CsrMatrix<T>> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(SparseError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    let mut indptr = Vec::with_capacity(a.rows() as usize + 1);
    let mut indices = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    indptr.push(0usize);
    for r in 0..a.rows() {
        let (ai, av) = (a.row_indices(r), a.row_values(r));
        let (bi, bv) = (b.row_indices(r), b.row_values(r));
        let (mut x, mut y) = (0usize, 0usize);
        while x < ai.len() || y < bi.len() {
            if y >= bi.len() || (x < ai.len() && ai[x] < bi[y]) {
                indices.push(ai[x]);
                values.push(combine(av[x], T::ZERO));
                x += 1;
            } else if x >= ai.len() || bi[y] < ai[x] {
                indices.push(bi[y]);
                values.push(combine(T::ZERO, bv[y]));
                y += 1;
            } else {
                indices.push(ai[x]);
                values.push(combine(av[x], bv[y]));
                x += 1;
                y += 1;
            }
        }
        indptr.push(indices.len());
    }
    Ok(CsrMatrix::from_raw_unchecked(
        a.rows(),
        a.cols(),
        indptr,
        indices,
        values,
    ))
}

/// `Aᵀ` as a new CSR matrix, `O(nnz + n)`.
pub fn transpose<T: Scalar>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    let rows = a.cols();
    let mut counts = vec![0usize; rows as usize + 1];
    for &c in a.indices() {
        counts[c as usize + 1] += 1;
    }
    for i in 0..rows as usize {
        counts[i + 1] += counts[i];
    }
    let indptr = counts.clone();
    let mut indices = vec![0u32; a.nnz()];
    let mut values = vec![T::ZERO; a.nnz()];
    let mut next = counts;
    for r in 0..a.rows() {
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            let slot = next[c as usize];
            indices[slot] = r;
            values[slot] = v;
            next[c as usize] += 1;
        }
    }
    CsrMatrix::from_raw_unchecked(rows, a.rows(), indptr, indices, values)
}

/// `true` if the matrix equals its transpose structurally and numerically.
pub fn is_symmetric<T: Scalar>(a: &CsrMatrix<T>) -> bool {
    if a.rows() != a.cols() {
        return false;
    }
    transpose(a) == *a
}

/// `(A + Aᵀ)` with duplicate positions summed; produces a symmetric matrix
/// from a directed edge list.
pub fn symmetrize<T: Scalar>(a: &CsrMatrix<T>) -> SparseResult<CsrMatrix<T>> {
    add(a, &transpose(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn m(entries: &[(u32, u32, f64)], shape: (u32, u32)) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(shape.0, shape.1);
        for &(r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn add_disjoint_and_overlapping() {
        let a = m(&[(0, 0, 1.0), (1, 2, 2.0)], (2, 3));
        let b = m(&[(0, 1, 3.0), (1, 2, 4.0)], (2, 3));
        let s = add(&a, &b).unwrap();
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 2), 6.0);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn sub_gives_explicit_zero() {
        let a = m(&[(0, 0, 1.0)], (1, 1));
        let d = sub(&a, &a).unwrap();
        assert_eq!(d.nnz(), 1); // explicit zero retained
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.prune_zeros().nnz(), 0);
    }

    #[test]
    fn shape_mismatch() {
        let a = m(&[], (2, 2));
        let b = m(&[], (3, 2));
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn transpose_rectangular() {
        let a = m(&[(0, 2, 1.0), (1, 0, 2.0)], (2, 3));
        let t = transpose(&a);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(transpose(&t), a);
    }

    #[test]
    fn symmetry_detection() {
        let sym = m(&[(0, 1, 2.0), (1, 0, 2.0)], (2, 2));
        assert!(is_symmetric(&sym));
        let asym = m(&[(0, 1, 2.0)], (2, 2));
        assert!(!is_symmetric(&asym));
        let rect = m(&[], (2, 3));
        assert!(!is_symmetric(&rect));
    }

    #[test]
    fn symmetrize_directed_edges() {
        let a = m(&[(0, 1, 1.0)], (2, 2));
        let s = symmetrize(&a).unwrap();
        assert!(is_symmetric(&s));
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 0), 1.0);
    }

    #[test]
    fn apply_delta_merges_and_prunes() {
        let a = m(&[(0, 0, 1.0), (1, 2, 2.0)], (2, 3));
        // Removes (1,2), perturbs (0,0), inserts (0,1).
        let delta = m(&[(1, 2, -2.0), (0, 0, 0.5), (0, 1, 3.0)], (2, 3));
        let merged = apply_delta(&a, &delta).unwrap();
        assert_eq!(merged.nnz(), 2);
        assert_eq!(merged.get(0, 0), 1.5);
        assert_eq!(merged.get(0, 1), 3.0);
        assert_eq!(merged.get(1, 2), 0.0);
        // Empty delta is the identity.
        let empty = CsrMatrix::<f64>::zeros(2, 3);
        assert_eq!(apply_delta(&a, &empty).unwrap(), a);
        // Shape mismatch is rejected.
        assert!(apply_delta(&a, &CsrMatrix::<f64>::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_empty() {
        let a = CsrMatrix::<f64>::zeros(3, 5);
        let t = transpose(&a);
        assert_eq!((t.rows(), t.cols(), t.nnz()), (5, 3, 0));
    }
}
