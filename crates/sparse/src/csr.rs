//! Compressed sparse row matrices.

use crate::error::{SparseError, SparseResult};
use crate::scalar::Scalar;

/// A sparse matrix in CSR format with sorted, unique column indices per row.
///
/// Storage is `m` in the values, `m` in the column indices, and `n + 1` row
/// offsets — exactly the accounting used by Lemma 7 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar = f64> {
    rows: u32,
    cols: u32,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds from raw parts, validating all CSR invariants.
    pub fn from_raw(
        rows: u32,
        cols: u32,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<T>,
    ) -> SparseResult<Self> {
        if indptr.len() != rows as usize + 1 {
            return Err(SparseError::InvalidCsr(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(SparseError::InvalidCsr("indptr[0] != 0".into()));
        }
        if *indptr.last().unwrap() != indices.len() {
            return Err(SparseError::InvalidCsr(format!(
                "indptr[last] = {} != nnz = {}",
                indptr.last().unwrap(),
                indices.len()
            )));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidCsr(format!(
                "indices length {} != values length {}",
                indices.len(),
                values.len()
            )));
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(SparseError::InvalidCsr("indptr not monotone".into()));
            }
        }
        for r in 0..rows as usize {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidCsr(format!(
                        "row {r} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= cols {
                    return Err(SparseError::InvalidCsr(format!(
                        "row {r} has column {last} >= cols {cols}"
                    )));
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds from raw parts without validation.
    ///
    /// Callers must uphold the CSR invariants (used internally by
    /// conversions that construct valid structure by design).
    pub fn from_raw_unchecked(
        rows: u32,
        cols: u32,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows as usize + 1);
        debug_assert_eq!(indices.len(), values.len());
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An empty `rows × cols` matrix (all zeros).
    pub fn zeros(rows: u32, cols: u32) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows as usize + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: u32) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n as usize).collect(),
            indices: (0..n).collect(),
            values: vec![T::ONE; n as usize],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row offset array (`rows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_indices(&self, r: u32) -> &[u32] {
        &self.indices[self.indptr[r as usize]..self.indptr[r as usize + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_values(&self, r: u32) -> &[T] {
        &self.values[self.indptr[r as usize]..self.indptr[r as usize + 1]]
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: u32) -> usize {
        self.indptr[r as usize + 1] - self.indptr[r as usize]
    }

    /// Value at `(r, c)`, `T::ZERO` if not stored. Binary search: `O(log row_nnz)`.
    pub fn get(&self, r: u32, c: u32) -> T {
        let row = self.row_indices(r);
        match row.binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => T::ZERO,
        }
    }

    /// Mutable access to the stored value at `(r, c)`, or `None` if the
    /// position is not stored (including out-of-range coordinates). Only
    /// the value can change — the sparsity structure stays fixed — which
    /// is exactly the contract of the streaming layer's in-place patch
    /// path.
    pub fn get_mut(&mut self, r: u32, c: u32) -> Option<&mut T> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        let start = self.indptr[r as usize];
        let row = &self.indices[start..self.indptr[r as usize + 1]];
        match row.binary_search(&c) {
            Ok(pos) => Some(&mut self.values[start + pos]),
            Err(_) => None,
        }
    }

    /// Iterates over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_indices(r)
                .iter()
                .zip(self.row_values(r))
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Converts back to a COO builder.
    pub fn to_coo(&self) -> crate::CooMatrix<T> {
        let mut coo = crate::CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("CSR indices are in bounds");
        }
        coo
    }

    /// Removes explicitly stored zeros.
    pub fn prune_zeros(&self) -> Self {
        let mut indptr = Vec::with_capacity(self.rows as usize + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        for r in 0..self.rows {
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                if v != T::ZERO {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self::from_raw_unchecked(self.rows, self.cols, indptr, indices, values)
    }

    /// Number of rows that contain at least one stored entry.
    pub fn nonzero_row_count(&self) -> u32 {
        (0..self.rows).filter(|&r| self.row_nnz(r) > 0).count() as u32
    }

    /// Extracts the submatrix of rows `r0..r1` and columns `c0..c1` as a new
    /// CSR matrix of shape `(r1 - r0) × (c1 - c0)`.
    pub fn submatrix(&self, r0: u32, r1: u32, c0: u32, c1: u32) -> Self {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "column range out of bounds");
        let mut indptr = Vec::with_capacity((r1 - r0) as usize + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in r0..r1 {
            let cols = self.row_indices(r);
            // Columns are sorted: binary search the window once per row.
            let lo = cols.partition_point(|&c| c < c0);
            let hi = cols.partition_point(|&c| c < c1);
            #[allow(clippy::needless_range_loop)] // indexes two slices in lockstep
            for i in lo..hi {
                indices.push(cols[i] - c0);
                values.push(self.row_values(r)[i]);
            }
            indptr.push(indices.len());
        }
        Self::from_raw_unchecked(r1 - r0, c1 - c0, indptr, indices, values)
    }

    /// Content fingerprint: a 128-bit FNV-1a hash over the shape and the
    /// exact CSR arrays (column structure and value bit patterns).
    ///
    /// Bit-identical content hashes equal; any structural or numeric
    /// change — a permutation, a perturbed value, an added entry — changes
    /// the fingerprint (up to the 2⁻¹²⁸ collision probability of the
    /// hash). Values are compared by bit pattern, which is *stricter*
    /// than `==`: `-0.0` and `+0.0` fingerprint differently, and NaN
    /// payloads are distinguished. For the serving engine's cache that
    /// strictness errs on the safe side — the worst case is a spurious
    /// re-decomposition, never a wrong cache hit.
    pub fn fingerprint(&self) -> u128 {
        const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        #[inline]
        fn eat(h: &mut u128, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u128;
                *h = h.wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        eat(&mut h, &self.rows.to_le_bytes());
        eat(&mut h, &self.cols.to_le_bytes());
        for &off in &self.indptr {
            eat(&mut h, &(off as u64).to_le_bytes());
        }
        for &c in &self.indices {
            eat(&mut h, &c.to_le_bytes());
        }
        for v in &self.values {
            eat(&mut h, &v.to_f64().to_bits().to_le_bytes());
        }
        h
    }

    /// Maximum absolute difference to `other` over all positions.
    ///
    /// Both matrices must have the same shape; complexity `O(nnz)`.
    pub fn max_abs_diff(&self, other: &Self) -> SparseResult<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut max = 0.0f64;
        for r in 0..self.rows {
            let (ai, av) = (self.row_indices(r), self.row_values(r));
            let (bi, bv) = (other.row_indices(r), other.row_values(r));
            let (mut x, mut y) = (0usize, 0usize);
            while x < ai.len() || y < bi.len() {
                let d = if y >= bi.len() || (x < ai.len() && ai[x] < bi[y]) {
                    let d = av[x].to_f64().abs();
                    x += 1;
                    d
                } else if x >= ai.len() || bi[y] < ai[x] {
                    let d = bv[y].to_f64().abs();
                    y += 1;
                    d
                } else {
                    let d = (av[x].to_f64() - bv[y].to_f64()).abs();
                    x += 1;
                    y += 1;
                    d
                };
                if d > max {
                    max = d;
                }
            }
        }
        Ok(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 0, 3.0).unwrap();
        coo.push(2, 1, 4.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nonzero_row_count(), 2);
    }

    #[test]
    fn identity_works() {
        let id = CsrMatrix::<f64>::identity(4);
        assert_eq!(id.nnz(), 4);
        for i in 0..4 {
            assert_eq!(id.get(i, i), 1.0);
        }
    }

    #[test]
    fn get_mut_patches_stored_values_only() {
        let mut m = sample();
        *m.get_mut(2, 1).unwrap() += 1.5;
        assert_eq!(m.get(2, 1), 5.5);
        assert!(
            m.get_mut(1, 1).is_none(),
            "structural zero is not patchable"
        );
        assert!(m.get_mut(3, 0).is_none(), "out-of-range row is None");
        assert!(m.get_mut(0, 3).is_none(), "out-of-range column is None");
        assert_eq!(m.nnz(), 4, "patching must not change the structure");
    }

    #[test]
    fn iter_roundtrip_via_coo() {
        let m = sample();
        let back = m.to_coo().to_csr();
        assert_eq!(m, back);
    }

    #[test]
    fn from_raw_validation() {
        // indptr wrong length
        assert!(CsrMatrix::<f64>::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // indptr non-monotone
        assert!(
            CsrMatrix::<f64>::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // unsorted columns
        assert!(CsrMatrix::<f64>::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // duplicate columns
        assert!(CsrMatrix::<f64>::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // column out of range
        assert!(CsrMatrix::<f64>::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // valid
        assert!(
            CsrMatrix::<f64>::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok()
        );
    }

    #[test]
    fn submatrix_extracts_window() {
        let m = sample();
        let sub = m.submatrix(0, 2, 1, 3);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.cols(), 2);
        assert_eq!(sub.get(0, 1), 2.0); // (0,2) shifted left by 1
        assert_eq!(sub.nnz(), 1);
    }

    #[test]
    fn submatrix_full_is_identity_op() {
        let m = sample();
        assert_eq!(m.submatrix(0, 3, 0, 3), m);
    }

    #[test]
    fn prune_zeros_drops_explicit_zeros() {
        let m = CsrMatrix::from_raw(1, 3, vec![0, 3], vec![0, 1, 2], vec![1.0, 0.0, 2.0]).unwrap();
        let p = m.prune_zeros();
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(0, 1), 0.0);
        assert_eq!(p.get(0, 2), 2.0);
    }

    #[test]
    fn max_abs_diff_detects_differences() {
        let a = sample();
        let mut coo = a.to_coo();
        coo.push(1, 1, 0.5).unwrap();
        let b = coo.to_csr();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert_eq!(a.max_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn max_abs_diff_shape_mismatch() {
        let a = sample();
        let b = CsrMatrix::<f64>::zeros(2, 2);
        assert!(a.max_abs_diff(&b).is_err());
    }
}
