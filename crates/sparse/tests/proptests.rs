//! Property-based tests for the sparse substrate.

use amd_sparse::{ops, spmm, CooMatrix, CsrMatrix, DeltaBuilder, DenseMatrix, Permutation};
use proptest::prelude::*;

/// Strategy: a random sparse matrix of shape up to 24×24 with up to 64
/// (possibly duplicated) triplets.
fn coo_strategy() -> impl Strategy<Value = CooMatrix<f64>> {
    (1u32..24, 1u32..24).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec((0..rows, 0..cols, -4.0f64..4.0), 0..64).prop_map(move |trips| {
            CooMatrix::from_triplets(rows, cols, trips).expect("in-bounds by construction")
        })
    })
}

/// Strategy: a random permutation of size n (as a shuffled order vector).
fn perm_strategy(n: u32) -> impl Strategy<Value = Permutation> {
    Just(n).prop_perturb(move |n, mut rng| {
        let mut order: Vec<u32> = (0..n).collect();
        // Fisher-Yates with proptest's rng for shrinkable determinism.
        for i in (1..order.len()).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        Permutation::from_order(order).unwrap()
    })
}

proptest! {
    #[test]
    fn coo_csr_roundtrip_preserves_sums(coo in coo_strategy()) {
        // Sum of all values must survive the conversion (duplicates merged).
        let direct: f64 = coo.entries().iter().map(|&(_, _, v)| v).sum();
        let csr = coo.to_csr();
        let via_csr: f64 = csr.values().iter().sum();
        prop_assert!((direct - via_csr).abs() < 1e-9);
        // CSR must satisfy its own invariants.
        let rebuilt = CsrMatrix::from_raw(
            csr.rows(), csr.cols(),
            csr.indptr().to_vec(), csr.indices().to_vec(), csr.values().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
    }

    #[test]
    fn add_sub_inverse(coo in coo_strategy()) {
        let a = coo.to_csr();
        let sum = ops::add(&a, &a).unwrap();
        let back = ops::sub(&sum, &a).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn transpose_involution(coo in coo_strategy()) {
        let a = coo.to_csr();
        prop_assert_eq!(ops::transpose(&ops::transpose(&a)), a);
    }

    #[test]
    fn symmetrize_is_symmetric(coo in coo_strategy()) {
        let a = coo.to_csr();
        if a.rows() == a.cols() {
            let s = ops::symmetrize(&a).unwrap();
            prop_assert!(ops::is_symmetric(&s));
        }
    }

    #[test]
    fn compact_is_idempotent_and_preserves_content(coo in coo_strategy()) {
        let reference = coo.to_csr().prune_zeros();
        let mut compacted = coo.clone();
        compacted.compact();
        // One compaction: same content (duplicates summed, zeros gone)…
        prop_assert!(compacted.to_csr().max_abs_diff(&reference).unwrap() < 1e-9);
        // …and a second compaction is a no-op bit for bit.
        let once = compacted.clone();
        compacted.compact();
        prop_assert_eq!(compacted, once);
    }

    #[test]
    fn delta_builder_matches_coo_accumulation(coo in coo_strategy()) {
        // Pushing the same triplet stream through the hash-keyed builder
        // and the append-only COO staging format must agree after
        // canonicalisation.
        let mut builder = DeltaBuilder::new(coo.rows(), coo.cols());
        for &(r, c, v) in coo.entries() {
            builder.add(r, c, v).unwrap();
        }
        let via_builder = builder.to_csr();
        let via_coo = coo.to_csr().prune_zeros();
        prop_assert!(via_builder.max_abs_diff(&via_coo).unwrap() < 1e-9);
        // Mass is the l1 norm of the canonical delta.
        let l1: f64 = via_builder.values().iter().map(|v| v.abs()).sum();
        prop_assert!((builder.mass() - l1).abs() < 1e-9);
    }

    #[test]
    fn apply_delta_then_subtract_roundtrips(
        (a, d) in (coo_strategy(), coo_strategy())
    ) {
        // Restrict to matching shapes by reshaping the delta onto a.
        let a = a.to_csr();
        let mut delta = CooMatrix::new(a.rows(), a.cols());
        for &(r, c, v) in d.entries() {
            delta.push(r % a.rows(), c % a.cols(), v).unwrap();
        }
        let delta = delta.to_csr();
        let merged = ops::apply_delta(&a, &delta).unwrap();
        let back = ops::sub(&merged, &delta).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn spmm_matches_dense_reference(coo in coo_strategy(), k in 1u32..5) {
        let a = coo.to_csr();
        let x = DenseMatrix::from_fn(a.cols(), k, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let fast = spmm::spmm(&a, &x).unwrap();
        let slow = spmm::spmm_dense_reference(&a, &x).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-9);
        let par = spmm::spmm_parallel(&a, &x).unwrap();
        prop_assert!(par.max_abs_diff(&slow).unwrap() < 1e-9);
    }

    #[test]
    fn permutation_roundtrips(n in 1u32..32) {
        let strat = perm_strategy(n);
        // materialise one permutation per case via a nested runner-free path:
        // use the strategy's value through prop_flat_map instead.
        let _ = strat; // covered by the dedicated test below
        prop_assert!(n >= 1);
    }
}

proptest! {
    #[test]
    fn matrix_market_roundtrip(coo in coo_strategy()) {
        use amd_sparse::io::{read_matrix_market, write_matrix_market};
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let back = read_matrix_market(std::io::BufReader::new(buf.as_slice()))
            .unwrap()
            .to_csr();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn permutation_algebra(
        (n, seed) in (2u32..32).prop_flat_map(|n| (Just(n), any::<u64>()))
    ) {
        use rand::prelude::*;
        use rand::seq::SliceRandom;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(&mut rng);
        let p = Permutation::from_order(order).unwrap();

        // P ∘ P⁻¹ = id
        let id = p.compose(&p.inverse()).unwrap();
        prop_assert_eq!(id, Permutation::identity(n));

        // Symmetric reorder roundtrip on a random symmetric matrix.
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..(2 * n) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            coo.push_sym(u, v, rng.gen_range(-1.0..1.0)).unwrap();
        }
        let a = coo.to_csr();
        let b = p.apply_symmetric(&a).unwrap();
        prop_assert_eq!(a.nnz(), b.nnz());
        let back = p.inverse().apply_symmetric(&b).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-12);

        // Row permutation roundtrip.
        let x = DenseMatrix::from_fn(n, 3, |r, c| (r as f64) * 10.0 + c as f64);
        let px = p.apply_rows(&x).unwrap();
        let back = p.unapply_rows(&px).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn permuted_spmm_identity(
        (n, seed) in (2u32..24).prop_flat_map(|n| (Just(n), any::<u64>()))
    ) {
        // (Pᵀ A P)(Pᵀ X) == Pᵀ (A X): the identity Algorithm 2 relies on.
        use rand::prelude::*;
        use rand::seq::SliceRandom;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(&mut rng);
        let p = Permutation::from_order(order).unwrap();
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..(3 * n) {
            coo.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-1.0..1.0))
                .unwrap();
        }
        let a = coo.to_csr();
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + c) % 7) as f64);

        let pap = p.apply_symmetric(&a).unwrap();
        let px = p.apply_rows(&x).unwrap();
        let lhs = spmm::spmm(&pap, &px).unwrap();
        let rhs = p.apply_rows(&spmm::spmm(&a, &x).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }

    #[test]
    fn fingerprint_equal_for_equal_matrices(coo in coo_strategy()) {
        // The same content reached through different construction paths
        // (COO → CSR, CSR → COO → CSR, raw arrays) hashes identically.
        let a = coo.to_csr();
        let via_coo = a.to_coo().to_csr();
        prop_assert_eq!(a.fingerprint(), via_coo.fingerprint());
        let rebuilt = CsrMatrix::from_raw(
            a.rows(), a.cols(),
            a.indptr().to_vec(), a.indices().to_vec(), a.values().to_vec(),
        ).unwrap();
        prop_assert_eq!(a.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn fingerprint_changes_on_perturbation(
        (coo, seed) in coo_strategy().prop_flat_map(|c| (Just(c), any::<u64>()))
    ) {
        use rand::prelude::*;
        let a = coo.to_csr();
        if a.nnz() == 0 {
            return Ok(());
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Perturb one stored value: the fingerprint must move.
        let mut values = a.values().to_vec();
        let idx = rng.gen_range(0..values.len());
        values[idx] += 1.0;
        let perturbed = CsrMatrix::from_raw(
            a.rows(), a.cols(),
            a.indptr().to_vec(), a.indices().to_vec(), values,
        ).unwrap();
        prop_assert_ne!(a.fingerprint(), perturbed.fingerprint());
        // Shape changes move it too, even with identical arrays.
        let widened = CsrMatrix::from_raw(
            a.rows(), a.cols() + 1,
            a.indptr().to_vec(), a.indices().to_vec(), a.values().to_vec(),
        ).unwrap();
        prop_assert_ne!(a.fingerprint(), widened.fingerprint());
    }

    #[test]
    fn fingerprint_changes_under_permutation(
        (n, seed) in (3u32..24).prop_flat_map(|n| (Just(n), any::<u64>()))
    ) {
        use rand::prelude::*;
        use rand::seq::SliceRandom;
        // A matrix whose rows are pairwise distinct: any non-identity
        // symmetric permutation changes the content, so it must change
        // the fingerprint.
        let a = {
            let mut coo = CooMatrix::new(n, n);
            for v in 0..n {
                coo.push(v, v, v as f64 + 1.0).unwrap();
            }
            coo.push(0, n - 1, 7.5).unwrap();
            coo.to_csr()
        };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(&mut rng);
        let p = Permutation::from_order(order).unwrap();
        let permuted = p.apply_symmetric(&a).unwrap();
        if permuted == a {
            return Ok(()); // drew the identity (or a symmetry of A)
        }
        prop_assert_ne!(a.fingerprint(), permuted.fingerprint());
    }
}
