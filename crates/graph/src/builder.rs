//! Edge-list staging for graph construction.

use crate::graph::Graph;

/// Accumulates edges with deduplication and self-loop removal, then builds
/// a [`Graph`].
///
/// All generators funnel through this type so that the `Graph` invariants
/// (no duplicates, no self-loops) hold by construction.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: u32) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// A builder with pre-allocated edge capacity.
    pub fn with_capacity(n: u32, m: usize) -> Self {
        Self {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of staged edges (before deduplication).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Stages the undirected edge `{u, v}`. Self-loops are silently
    /// dropped; duplicates are removed at build time. Panics on
    /// out-of-range endpoints.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Grows the vertex set (never shrinks).
    pub fn ensure_vertices(&mut self, n: u32) {
        self.n = self.n.max(n);
    }

    /// Builds the graph, deduplicating staged edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in other direction
        b.add_edge(2, 2); // self-loop dropped
        b.add_edge(1, 3);
        assert_eq!(b.staged_edges(), 3);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn ensure_vertices_grows() {
        let mut b = GraphBuilder::new(2);
        b.ensure_vertices(5);
        b.add_edge(0, 4);
        let g = b.build();
        assert_eq!(g.n(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }
}
