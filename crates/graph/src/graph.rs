//! The core CSR graph type.

use amd_sparse::{CooMatrix, CsrMatrix, Scalar};

/// An undirected graph in CSR adjacency form.
///
/// Every edge `{u, v}` is stored twice (once per endpoint); self-loops are
/// not represented (the decomposition treats matrix diagonals separately,
/// as they always fall inside any band).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds from a deduplicated, self-loop-free edge list with `u != v`.
    ///
    /// Prefer [`GraphBuilder`](crate::GraphBuilder), which enforces those
    /// preconditions.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n as usize + 1];
        for &(u, v) in edges {
            debug_assert!(u != v, "self-loop {u}");
            debug_assert!(u < n && v < n, "edge ({u},{v}) out of bounds for n={n}");
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n as usize {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone();
        let mut neighbors = vec![0u32; edges.len() * 2];
        let mut next = deg;
        for &(u, v) in edges {
            neighbors[next[u as usize]] = v;
            next[u as usize] += 1;
            neighbors[next[v as usize]] = u;
            next[v as usize] += 1;
        }
        // Sort each adjacency list for deterministic iteration and O(log d)
        // membership tests.
        let mut g = Self { offsets, neighbors };
        for v in 0..n {
            let (lo, hi) = (g.offsets[v as usize], g.offsets[v as usize + 1]);
            g.neighbors[lo..hi].sort_unstable();
        }
        g
    }

    /// An edgeless graph on `n` vertices.
    pub fn empty(n: u32) -> Self {
        Self {
            offsets: vec![0; n as usize + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Sorted neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// `true` if the edge `{u, v}` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree Δ(G).
    pub fn max_degree(&self) -> u32 {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree (= `nnz(A)/n` of the adjacency matrix).
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.n() as f64
        }
    }

    /// Iterates over each undirected edge once, with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Collects the edge list (each edge once, `u < v`).
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::with_capacity(self.m());
        edges.extend(self.edges());
        edges
    }

    /// Adjacency matrix with unit weights.
    pub fn to_adjacency<T: Scalar>(&self) -> CsrMatrix<T> {
        let n = self.n();
        let mut coo = CooMatrix::with_capacity(n, n, self.neighbors.len());
        for u in 0..n {
            for &v in self.neighbors(u) {
                coo.push(u, v, T::ONE)
                    .expect("neighbour indices are in bounds");
            }
        }
        coo.to_csr()
    }

    /// Builds the graph of the off-diagonal sparsity structure of a square
    /// matrix (symmetrised: an entry at `(i, j)` or `(j, i)` yields the
    /// edge `{i, j}`).
    pub fn from_matrix_structure<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        assert_eq!(
            a.rows(),
            a.cols(),
            "adjacency structure requires a square matrix"
        );
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(a.nnz());
        for r in 0..a.rows() {
            for &c in a.row_indices(r) {
                if r < c {
                    edges.push((r, c));
                } else if c < r && !contains_sorted(a.row_indices(c), r) {
                    // (r, c) with r > c and no mirror entry: still an edge.
                    edges.push((c, r));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Self::from_edges(a.rows(), &edges)
    }

    /// The subgraph induced by vertices with `keep[v] == true`, on the
    /// *same* vertex set (edges incident to dropped vertices removed,
    /// dropped vertices become isolated). This matches `G_i[V_i \ V_h]` in
    /// LA-Decompose where vertex identities must be preserved.
    pub fn filter_vertices(&self, keep: &[bool]) -> Self {
        assert_eq!(keep.len(), self.n() as usize);
        let edges: Vec<(u32, u32)> = self
            .edges()
            .filter(|&(u, v)| keep[u as usize] && keep[v as usize])
            .collect();
        Self::from_edges(self.n(), &edges)
    }
}

fn contains_sorted(slice: &[u32], x: u32) -> bool {
    slice.binary_search(&x).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_sparse::CooMatrix;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 2-0, 2-3
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = triangle_plus_pendant();
        let mut e = g.edge_list();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn adjacency_roundtrip() {
        let g = triangle_plus_pendant();
        let a: CsrMatrix<f64> = g.to_adjacency();
        assert_eq!(a.nnz(), 8); // each edge twice
        let back = Graph::from_matrix_structure(&a);
        assert_eq!(back, g);
    }

    #[test]
    fn from_matrix_structure_symmetrizes_and_skips_diagonal() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 1, 1.0).unwrap(); // only one direction stored
        coo.push(1, 1, 5.0).unwrap(); // diagonal ignored
        coo.push(2, 0, 2.0).unwrap();
        let g = Graph::from_matrix_structure(&coo.to_csr());
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn filter_vertices_keeps_vertex_ids() {
        let g = triangle_plus_pendant();
        let keep = vec![true, false, true, true];
        let f = g.filter_vertices(&keep);
        assert_eq!(f.n(), 4);
        assert_eq!(f.m(), 2); // 2-0 and 2-3 survive
        assert_eq!(f.degree(1), 0);
        assert!(f.has_edge(0, 2));
    }
}
