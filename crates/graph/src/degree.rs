//! Degree statistics, including the Table 2 dataset signature.

use crate::graph::Graph;

/// Summary statistics of a graph's degree sequence, mirroring the columns
/// of Table 2 of the paper (`n`, `nnz(A)/n`, `Δ`).
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub n: u32,
    /// Number of undirected edges.
    pub m: usize,
    /// Average degree = `nnz(A)/n`.
    pub avg_degree: f64,
    /// Maximum degree Δ.
    pub max_degree: u32,
    /// Number of isolated vertices.
    pub isolated: u32,
    /// Median degree.
    pub median_degree: u32,
}

impl DegreeStats {
    /// Computes statistics for `g`.
    pub fn of(g: &Graph) -> Self {
        let n = g.n();
        let mut degrees: Vec<u32> = (0..n).map(|v| g.degree(v)).collect();
        let isolated = degrees.iter().filter(|&&d| d == 0).count() as u32;
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let median_degree = if degrees.is_empty() {
            0
        } else {
            let mid = degrees.len() / 2;
            *degrees.select_nth_unstable(mid).1
        };
        Self {
            n,
            m: g.m(),
            avg_degree: g.avg_degree(),
            max_degree,
            isolated,
            median_degree,
        }
    }

    /// Maximum degree as a fraction of `n` — the "Δ ≈ 0.93 n" signature of
    /// the MAWI datasets.
    pub fn max_degree_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max_degree as f64 / self.n as f64
        }
    }
}

/// The `b` vertices of largest degree, ties broken by smaller vertex id —
/// the pruning set `V_h` of LA-Decompose step 1 (§5.1).
pub fn top_degree_vertices(g: &Graph, b: usize) -> Vec<u32> {
    let mut vs: Vec<u32> = (0..g.n()).collect();
    let b = b.min(vs.len());
    vs.sort_unstable_by(|&a, &bv| g.degree(bv).cmp(&g.degree(a)).then(a.cmp(&bv)));
    vs.truncate(b);
    vs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::basic;

    #[test]
    fn stats_of_star() {
        let g = basic::star(11);
        let s = DegreeStats::of(&g);
        assert_eq!(s.n, 11);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.median_degree, 1);
        assert!((s.max_degree_fraction() - 10.0 / 11.0).abs() < 1e-12);
        assert!((s.avg_degree - 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let g = Graph::empty(4);
        let s = DegreeStats::of(&g);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.isolated, 4);
        let e = Graph::empty(0);
        assert_eq!(DegreeStats::of(&e).median_degree, 0);
    }

    #[test]
    fn top_degree_selects_hubs() {
        // Star at 0 plus a triangle 1-2-3: degrees 0:4(+), verify ordering.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (2, 3)]);
        let top = top_degree_vertices(&g, 2);
        assert_eq!(top[0], 0); // degree 4
        assert_eq!(top[1], 2); // degree 3
        assert_eq!(top_degree_vertices(&g, 100).len(), 5);
    }

    #[test]
    fn top_degree_tie_break_is_deterministic() {
        let g = basic::path(6); // interior vertices all degree 2
        let top = top_degree_vertices(&g, 3);
        assert_eq!(top, vec![1, 2, 3]);
    }
}
