//! Graph-theoretic lower bounds used by §3 of the paper.
//!
//! The paper's argument against bandwidth minimisation rests on two
//! classic lower bounds: every ordering of `G` has bandwidth at least
//! `⌈(n−1)/D(G)⌉` (low-diameter graphs are bad) and at least `⌈Δ/2⌉`
//! (high-degree graphs are bad). These are cheap to evaluate and are used
//! by the ablation benches and the claims tests.

use crate::graph::Graph;
use crate::traversal::{bfs, connected_components, pseudo_peripheral};

/// Exact eccentricity-based diameter of the component containing `start`,
/// *estimated* by double-sweep BFS (exact on trees, a lower bound in
/// general — which is the safe direction for the bandwidth bound).
pub fn diameter_estimate(g: &Graph, start: u32) -> u32 {
    let far = pseudo_peripheral(g, start);
    bfs(g, far).eccentricity()
}

/// `⌈(n_c − 1)/D⌉` over the largest component — the diameter-based
/// bandwidth lower bound of §3 ("low-diameter networks have high
/// bandwidth"). Since the double sweep may *under*estimate `D`, the value
/// returned may overestimate slightly on non-trees; on trees it is exact.
pub fn bandwidth_lower_bound_diameter(g: &Graph) -> u32 {
    let comps = connected_components(g);
    let largest = comps.by_decreasing_size().first().copied().unwrap_or(0);
    let (mut rep, mut size) = (0u32, 0u32);
    for v in 0..g.n() {
        if comps.comp[v as usize] == largest {
            if size == 0 {
                rep = v;
            }
            size += 1;
        }
    }
    if size <= 1 {
        return 0;
    }
    let d = diameter_estimate(g, rep).max(1);
    (size - 1).div_ceil(d)
}

/// `⌈Δ/2⌉` — the degree-based bandwidth lower bound of §3 ("power-law
/// networks have high bandwidth"). Exact for every graph and ordering.
pub fn bandwidth_lower_bound_degree(g: &Graph) -> u32 {
    g.max_degree().div_ceil(2)
}

/// The combined §3 lower bound `max(⌈(n−1)/D⌉, ⌈Δ/2⌉)`.
pub fn bandwidth_lower_bound(g: &Graph) -> u32 {
    bandwidth_lower_bound_degree(g).max(bandwidth_lower_bound_diameter(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::basic;

    #[test]
    fn path_has_trivial_bounds() {
        let g = basic::path(100);
        // D = 99 → (n−1)/D = 1; Δ = 2 → Δ/2 = 1. Bandwidth 1 is achievable.
        assert_eq!(bandwidth_lower_bound(&g), 1);
    }

    #[test]
    fn star_bound_is_half_degree() {
        let g = basic::star(41);
        assert_eq!(bandwidth_lower_bound_degree(&g), 20);
        // D = 2 → (41−1)/2 = 20 as well.
        assert_eq!(bandwidth_lower_bound(&g), 20);
    }

    #[test]
    fn balanced_tree_bound_is_near_linear_over_log() {
        // §5 intro: low-diameter trees have Ω(n / log n) bandwidth.
        let n = 1023u32;
        let g = basic::complete_ary_tree(2, n);
        let bound = bandwidth_lower_bound_diameter(&g);
        // D = 2·log2(512) = 18 → bound = ⌈1022/18⌉ = 57.
        assert!(bound >= (n - 1) / 20, "bound {bound}");
        assert!(bound >= bandwidth_lower_bound_degree(&g));
    }

    #[test]
    fn diameter_exact_on_trees() {
        let g = basic::path(50);
        assert_eq!(diameter_estimate(&g, 25), 49);
        let t = basic::complete_ary_tree(2, 15); // depth 3
        assert_eq!(diameter_estimate(&t, 0), 6);
    }

    #[test]
    fn disconnected_uses_largest_component() {
        let g = Graph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        // Largest component is the 4-path: D = 3, (4−1)/3 = 1.
        assert_eq!(bandwidth_lower_bound_diameter(&g), 1);
        let e = Graph::empty(5);
        assert_eq!(bandwidth_lower_bound_diameter(&e), 0);
    }
}
