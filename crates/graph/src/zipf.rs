//! The discrete truncated Zipf distribution of §5.6 and the Theorem 1
//! survival bound.
//!
//! The paper models vertex degrees of power-law graphs as Zipf variables
//! truncated to `1..=n` with shape `α > 1`:
//!
//! ```text
//! p(x) = x^{-α} / H_{n,α},   S(x) = (H_{n,α} − H_{x,α}) / H_{n,α}
//! ```
//!
//! Theorem 1 bounds the survival function by
//! `S(x) ≤ x^{1−α} / ((α−1) ζ(α))` for sufficiently large `x`, which drives
//! the pruning analysis (Lemma 5, Corollary 2).

use rand::Rng;

/// Generalised harmonic number `H_{n,α} = Σ_{j=1}^{n} j^{-α}`.
pub fn harmonic(n: u64, alpha: f64) -> f64 {
    (1..=n).map(|j| (j as f64).powf(-alpha)).sum()
}

/// Riemann zeta `ζ(α)` for `α > 1`, via direct summation plus the
/// Euler–Maclaurin tail correction `N^{1−α}/(α−1) + N^{−α}/2`.
pub fn zeta(alpha: f64) -> f64 {
    assert!(alpha > 1.0, "zeta(α) diverges for α ≤ 1");
    let cutoff = 10_000u64;
    let head = harmonic(cutoff, alpha);
    let n = cutoff as f64;
    head + n.powf(1.0 - alpha) / (alpha - 1.0) - 0.5 * n.powf(-alpha)
}

/// Closed-form survival bound of Theorem 1:
/// `S(x) ≤ x^{1−α} / ((α−1) ζ(α))`.
pub fn survival_bound(x: f64, alpha: f64) -> f64 {
    x.powf(1.0 - alpha) / ((alpha - 1.0) * zeta(alpha))
}

/// A Zipf distribution truncated to `1..=n` with shape `α`, supporting
/// exact sampling via inverse-CDF on a precomputed table.
///
/// Memory is `O(n)`; intended for generator-scale `n` (≤ ~10⁷).
#[derive(Debug, Clone)]
pub struct TruncatedZipf {
    n: u64,
    alpha: f64,
    /// `cdf[x-1] = F(x)`, normalised to end at exactly 1.
    cdf: Vec<f64>,
}

impl TruncatedZipf {
    /// Builds the distribution on support `1..=n` with shape `α > 0`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1);
        assert!(alpha > 0.0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for j in 1..=n {
            acc += (j as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().unwrap() = 1.0;
        Self { n, alpha, cdf }
    }

    /// Upper end of the support.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability mass `p(x)` for `x ∈ 1..=n`.
    pub fn pmf(&self, x: u64) -> f64 {
        assert!((1..=self.n).contains(&x));
        let prev = if x == 1 {
            0.0
        } else {
            self.cdf[x as usize - 2]
        };
        self.cdf[x as usize - 1] - prev
    }

    /// Exact survival `S(x) = P(X > x)`; `S(0) = 1`.
    pub fn survival(&self, x: u64) -> f64 {
        if x == 0 {
            1.0
        } else if x >= self.n {
            0.0
        } else {
            1.0 - self.cdf[x as usize - 1]
        }
    }

    /// Draws one sample by binary search on the CDF table.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        idx as u64 + 1
    }

    /// Draws `count` samples.
    pub fn sample_many<R: Rng>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// Expected number of vertices of degree > `x` among `n` Zipf-distributed
/// degrees — the quantity `n·S(x)` of Lemma 5.
pub fn expected_high_degree_count(n: u64, alpha: f64, x: u64) -> f64 {
    let z = TruncatedZipf::new(n, alpha);
    n as f64 * z.survival(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn harmonic_small_values() {
        assert!((harmonic(1, 2.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(2, 1.0) - 1.5).abs() < 1e-12);
        assert!((harmonic(3, 2.0) - (1.0 + 0.25 + 1.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn zeta_matches_known_values() {
        // ζ(2) = π²/6, ζ(4) = π⁴/90.
        assert!((zeta(2.0) - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-8);
        assert!((zeta(4.0) - std::f64::consts::PI.powi(4) / 90.0).abs() < 1e-10);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = TruncatedZipf::new(100, 1.5);
        let total: f64 = (1..=100).map(|x| z.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn survival_monotone_and_bounded() {
        let z = TruncatedZipf::new(1000, 2.0);
        assert_eq!(z.survival(0), 1.0);
        assert_eq!(z.survival(1000), 0.0);
        let mut prev = 1.0;
        for x in [1u64, 2, 5, 10, 100, 999] {
            let s = z.survival(x);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn theorem1_bound_holds() {
        // S(x) ≤ x^{1−α} / ((α−1)ζ(α)) for large-enough x (Theorem 1).
        for &alpha in &[1.5f64, 2.0, 2.5, 3.0] {
            let z = TruncatedZipf::new(100_000, alpha);
            for &x in &[10u64, 50, 100, 1000, 10_000] {
                let s = z.survival(x);
                let bound = survival_bound(x as f64, alpha);
                assert!(
                    s <= bound * (1.0 + 1e-9),
                    "α={alpha} x={x}: S={s} > bound={bound}"
                );
            }
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = TruncatedZipf::new(50, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let samples = z.sample_many(&mut rng, 20_000);
        let ones = samples.iter().filter(|&&s| s == 1).count() as f64 / 20_000.0;
        assert!(
            (ones - z.pmf(1)).abs() < 0.02,
            "empirical {ones} vs pmf {}",
            z.pmf(1)
        );
        assert!(samples.iter().all(|&s| (1..=50).contains(&s)));
    }

    #[test]
    fn expected_high_degree_count_shrinks_with_threshold() {
        let a = expected_high_degree_count(10_000, 2.0, 10);
        let b = expected_high_degree_count(10_000, 2.0, 100);
        assert!(a > b);
        assert!(b >= 0.0);
    }

    #[test]
    fn heavier_tail_for_smaller_alpha() {
        let light = TruncatedZipf::new(1000, 3.0);
        let heavy = TruncatedZipf::new(1000, 1.2);
        assert!(heavy.survival(100) > light.survival(100));
    }
}
