//! 2/3-separators (§5.2).
//!
//! `Separator-LA` needs, for the current connected subgraph, a vertex set
//! `S` whose removal leaves components of size at most `2/3 · n`. Two
//! implementations are provided:
//!
//! * [`centroid_separator`] — exact single-vertex 1/2-separator for trees
//!   (trees have separation number 1 in this vertex-separator sense),
//! * [`bfs_level_separator`] — the classic BFS-level heuristic for general
//!   graphs: pick a middle BFS level from a pseudo-peripheral root. On
//!   planar-like meshes this finds `O(√n)`-sized separators, matching the
//!   Lipton–Tarjan bound cited in Table 1 up to constants.

use crate::graph::Graph;
use crate::traversal::bfs_filtered;

/// Strategy interface: given the graph and the vertex set of one connected
/// component (sorted), return a non-empty separator subset.
pub trait SeparatorFinder {
    /// Returns a non-empty subset of `component` whose removal leaves
    /// components of size ≤ 2/3 · |component| (best effort for heuristics).
    fn find(&self, g: &Graph, component: &[u32]) -> Vec<u32>;
}

/// Exact centroid separator for forests.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentroidSeparator;

impl SeparatorFinder for CentroidSeparator {
    fn find(&self, g: &Graph, component: &[u32]) -> Vec<u32> {
        vec![centroid_separator(g, component)]
    }
}

/// BFS middle-level separator for general graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsLevelSeparator;

impl SeparatorFinder for BfsLevelSeparator {
    fn find(&self, g: &Graph, component: &[u32]) -> Vec<u32> {
        bfs_level_separator(g, component)
    }
}

/// The centroid of the tree induced by `component`: the vertex minimising
/// the largest remaining component after removal (≤ |component|/2 for
/// trees). `component` must induce a tree in `g`.
pub fn centroid_separator(g: &Graph, component: &[u32]) -> u32 {
    assert!(!component.is_empty());
    let total = component.len() as u32;
    let in_comp = membership(g.n(), component);
    // Iterative DFS from component[0] computing subtree sizes.
    let root = component[0];
    let mut parent = vec![u32::MAX; g.n() as usize];
    let mut order = Vec::with_capacity(component.len());
    let mut stack = vec![root];
    let mut seen = vec![false; g.n() as usize];
    seen[root as usize] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &v in g.neighbors(u) {
            if in_comp[v as usize] && !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = u;
                stack.push(v);
            }
        }
    }
    debug_assert_eq!(order.len(), component.len(), "component must be connected");
    let mut size = vec![1u32; g.n() as usize];
    for &u in order.iter().rev() {
        if parent[u as usize] != u32::MAX {
            size[parent[u as usize] as usize] += size[u as usize];
        }
    }
    // max component after removing v: max over children subtree sizes and
    // the "upward" remainder total - size[v].
    let mut best = root;
    let mut best_max = u32::MAX;
    for &v in &order {
        let mut worst = total - size[v as usize];
        for &c in g.neighbors(v) {
            if in_comp[c as usize] && parent[c as usize] == v {
                worst = worst.max(size[c as usize]);
            }
        }
        if worst < best_max {
            best_max = worst;
            best = v;
        }
    }
    debug_assert!(
        best_max <= total / 2 + (total % 2),
        "centroid bound violated"
    );
    best
}

/// BFS-level separator: BFS from a pseudo-peripheral vertex of the
/// component and return the smallest level whose removal balances the
/// remainder (components ≤ 2/3); falls back to the middle level.
pub fn bfs_level_separator(g: &Graph, component: &[u32]) -> Vec<u32> {
    assert!(!component.is_empty());
    if component.len() == 1 {
        return vec![component[0]];
    }
    let in_comp = membership(g.n(), component);
    let root = pseudo_peripheral_in(g, component[0], &in_comp);
    let res = bfs_filtered(g, root, |v| in_comp[v as usize]);
    let depth = res.eccentricity();
    if depth == 0 {
        return vec![root];
    }
    // Group vertices by level; prefix[l] = vertices strictly below level l.
    let mut level_counts = vec![0u32; depth as usize + 1];
    for &v in &res.order {
        level_counts[res.level[v as usize] as usize] += 1;
    }
    let total = res.order.len() as u32;
    let limit = 2 * total / 3;
    // Candidate levels 1..depth; evaluate balance: below = Σ_{l' < l},
    // above = Σ_{l' > l}. Both sides are unions of components, so each
    // component is ≤ max(below, above); accept if that is ≤ limit, choosing
    // the smallest separator among acceptable levels.
    let mut below = level_counts[0];
    let mut best: Option<(u32, u32)> = None; // (separator size, level)
    for l in 1..depth {
        let sep = level_counts[l as usize];
        let above = total - below - sep;
        if below.max(above) <= limit && best.is_none_or(|(s, _)| sep < s) {
            best = Some((sep, l));
        }
        below += sep;
    }
    let chosen = best.map(|(_, l)| l).unwrap_or(depth.div_ceil(2));
    res.order
        .iter()
        .copied()
        .filter(|&v| res.level[v as usize] == chosen)
        .collect()
}

fn membership(n: u32, component: &[u32]) -> Vec<bool> {
    let mut m = vec![false; n as usize];
    for &v in component {
        m[v as usize] = true;
    }
    m
}

fn pseudo_peripheral_in(g: &Graph, start: u32, in_comp: &[bool]) -> u32 {
    // Restricted variant of traversal::pseudo_peripheral.
    let mut current = start;
    let mut ecc = 0;
    for _ in 0..4 {
        let res = bfs_filtered(g, current, |v| in_comp[v as usize]);
        let far = *res.order.last().unwrap_or(&current);
        let far_ecc = res.eccentricity();
        if far_ecc > ecc {
            ecc = far_ecc;
            current = far;
        } else {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::basic;
    use crate::traversal::connected_components;

    fn check_balance(g: &Graph, component: &[u32], sep: &[u32]) {
        let mut keep = vec![false; g.n() as usize];
        for &v in component {
            keep[v as usize] = true;
        }
        for &s in sep {
            keep[s as usize] = false;
            assert!(component.contains(&s), "separator vertex outside component");
        }
        let sub = g.filter_vertices(&keep);
        let comps = connected_components(&sub);
        let limit = 2 * component.len() / 3 + 1;
        for (c, &size) in comps.sizes.iter().enumerate() {
            // Only count components made of kept component vertices.
            let representative =
                (0..g.n()).find(|&v| comps.comp[v as usize] == c as u32 && keep[v as usize]);
            if representative.is_some() {
                assert!(
                    (size as usize) <= limit,
                    "component of size {size} exceeds 2/3 bound {limit}"
                );
            }
        }
    }

    #[test]
    fn centroid_of_path_is_middle() {
        let g = basic::path(9);
        let comp: Vec<u32> = (0..9).collect();
        let c = centroid_separator(&g, &comp);
        assert_eq!(c, 4);
        check_balance(&g, &comp, &[c]);
    }

    #[test]
    fn centroid_of_star_is_hub() {
        let g = basic::star(10);
        let comp: Vec<u32> = (0..10).collect();
        assert_eq!(centroid_separator(&g, &comp), 0);
    }

    #[test]
    fn centroid_balances_binary_tree() {
        let g = basic::complete_ary_tree(2, 63);
        let comp: Vec<u32> = (0..63).collect();
        let c = centroid_separator(&g, &comp);
        check_balance(&g, &comp, &[c]);
    }

    #[test]
    fn bfs_level_separator_on_grid() {
        let g = basic::grid_2d(8, 8);
        let comp: Vec<u32> = (0..64).collect();
        let sep = bfs_level_separator(&g, &comp);
        assert!(!sep.is_empty());
        // Heuristic quality on an 8x8 grid: separator should be O(side).
        assert!(
            sep.len() <= 16,
            "separator unexpectedly large: {}",
            sep.len()
        );
        check_balance(&g, &comp, &sep);
    }

    #[test]
    fn bfs_level_separator_single_vertex() {
        let g = Graph::empty(3);
        assert_eq!(bfs_level_separator(&g, &[2]), vec![2]);
    }

    #[test]
    fn separator_trait_objects() {
        let g = basic::path(5);
        let comp: Vec<u32> = (0..5).collect();
        let finders: Vec<Box<dyn SeparatorFinder>> =
            vec![Box::new(CentroidSeparator), Box::new(BfsLevelSeparator)];
        for f in &finders {
            let sep = f.find(&g, &comp);
            assert!(!sep.is_empty());
            check_balance(&g, &comp, &sep);
        }
    }
}
