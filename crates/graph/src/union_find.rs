//! Disjoint-set forest with union by rank and path halving.

/// Union-find over `0..n`, used by Kruskal's algorithm and connected
/// component counting.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: u32,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: u32) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n as usize],
            components: n,
        }
    }

    /// Representative of `v`'s set, with path halving.
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let grand = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grand;
            v = grand;
        }
        v
    }

    /// Merges the sets of `u` and `v`; returns `true` if they were distinct.
    pub fn union(&mut self, u: u32, v: u32) -> bool {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        let (hi, lo) = if self.rank[ru as usize] >= self.rank[rv as usize] {
            (ru, rv)
        } else {
            (rv, ru)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// `true` if `u` and `v` are in the same set.
    pub fn connected(&mut self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> u32 {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0)); // already joined
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        assert!(uf.union(1, 4));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.components(), 2);
    }

    #[test]
    fn chain_unions_collapse() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn singleton() {
        let mut uf = UnionFind::new(1);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.components(), 1);
    }
}
