//! Random spanning forests (§5.3, steps 1–2).
//!
//! The paper's near-linear decomposition heuristic draws i.i.d. uniform
//! edge weights and takes a minimum spanning forest — equivalently, a
//! spanning forest built over a uniformly shuffled edge order. We implement
//! exactly that: shuffle edges with the caller's RNG, then run Kruskal with
//! union-find.

use crate::graph::Graph;
use crate::union_find::UnionFind;
use rand::seq::SliceRandom;
use rand::Rng;

/// A spanning forest: one parent pointer per vertex (`u32::MAX` for roots)
/// plus the list of roots, one per connected component.
#[derive(Debug, Clone)]
pub struct SpanningForest {
    /// `parent[v]`, `u32::MAX` when `v` is a root.
    pub parent: Vec<u32>,
    /// One root per component.
    pub roots: Vec<u32>,
    /// Forest edges (subset of the input graph's edges).
    pub edges: Vec<(u32, u32)>,
}

impl SpanningForest {
    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.parent.len() as u32
    }

    /// The forest as a [`Graph`] on the same vertex set.
    pub fn to_graph(&self) -> Graph {
        Graph::from_edges(self.n(), &self.edges)
    }

    /// Size of the subtree rooted at every vertex, computed in one
    /// bottom-up pass over a topological order.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let n = self.parent.len();
        let mut size = vec![1u32; n];
        // Children-count topological order (leaves first).
        let mut pending = vec![0u32; n];
        for v in 0..n {
            let p = self.parent[v];
            if p != u32::MAX {
                pending[p as usize] += 1;
            }
        }
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&v| pending[v as usize] == 0)
            .collect();
        while let Some(v) = stack.pop() {
            let p = self.parent[v as usize];
            if p != u32::MAX {
                size[p as usize] += size[v as usize];
                pending[p as usize] -= 1;
                if pending[p as usize] == 0 {
                    stack.push(p);
                }
            }
        }
        size
    }
}

/// Builds a uniformly random spanning forest of `g`.
///
/// Every connected component contributes one tree; isolated vertices
/// become singleton roots.
pub fn random_spanning_forest<R: Rng>(g: &Graph, rng: &mut R) -> SpanningForest {
    let mut edges = g.edge_list();
    edges.shuffle(rng);
    kruskal_forest(g.n(), &edges)
}

/// Deterministic spanning forest over the given edge order (Kruskal on a
/// pre-sorted/shuffled list).
pub fn kruskal_forest(n: u32, edges: &[(u32, u32)]) -> SpanningForest {
    let mut uf = UnionFind::new(n);
    let mut forest_edges = Vec::with_capacity(n.saturating_sub(1) as usize);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for &(u, v) in edges {
        if uf.union(u, v) {
            forest_edges.push((u, v));
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    // Root every component at its smallest vertex and orient parents by BFS.
    let mut parent = vec![u32::MAX; n as usize];
    let mut seen = vec![false; n as usize];
    let mut roots = Vec::new();
    let mut queue = Vec::new();
    for s in 0..n {
        if seen[s as usize] {
            continue;
        }
        roots.push(s);
        seen[s as usize] = true;
        queue.clear();
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    parent[v as usize] = u;
                    queue.push(v);
                }
            }
        }
    }
    SpanningForest {
        parent,
        roots,
        edges: forest_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forest_spans_components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let f = random_spanning_forest(&g, &mut rng);
        // Components: {0,1,2}, {3,4}, {5} → 2 + 1 + 0 edges.
        assert_eq!(f.edges.len(), 3);
        assert_eq!(f.roots.len(), 3);
        // Forest is acyclic and spans: per-component edge count = size - 1.
        let fg = f.to_graph();
        let comps = crate::traversal::connected_components(&fg);
        assert_eq!(comps.count, 3);
    }

    #[test]
    fn parents_are_consistent() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let f = random_spanning_forest(&g, &mut rng);
        assert_eq!(f.edges.len(), 4);
        let root_count = f.parent.iter().filter(|&&p| p == u32::MAX).count();
        assert_eq!(root_count, 1);
        // Walking up from any vertex reaches the root without cycles.
        for mut v in 0..5u32 {
            let mut steps = 0;
            while f.parent[v as usize] != u32::MAX {
                v = f.parent[v as usize];
                steps += 1;
                assert!(steps <= 5, "cycle in parent pointers");
            }
            assert_eq!(v, f.roots[0]);
        }
    }

    #[test]
    fn subtree_sizes_sum() {
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let f = kruskal_forest(7, &g.edge_list());
        let sizes = f.subtree_sizes();
        assert_eq!(sizes[f.roots[0] as usize], 7);
        // Each leaf has size 1.
        for v in [3u32, 4, 5, 6] {
            assert_eq!(sizes[v as usize], 1);
        }
    }

    #[test]
    fn randomness_varies_with_seed() {
        // On a cycle, different seeds should eventually drop different edges.
        let g = Graph::from_edges(8, &(0..8).map(|i| (i, (i + 1) % 8)).collect::<Vec<_>>());
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..16 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_spanning_forest(&g, &mut rng);
            let mut e = f.edges.clone();
            e.sort_unstable();
            distinct.insert(e);
        }
        assert!(
            distinct.len() > 1,
            "spanning forest never varied across seeds"
        );
    }

    #[test]
    fn empty_and_singleton() {
        let f = kruskal_forest(0, &[]);
        assert_eq!(f.roots.len(), 0);
        let f1 = kruskal_forest(1, &[]);
        assert_eq!(f1.roots, vec![0]);
        assert_eq!(f1.subtree_sizes(), vec![1]);
    }
}
