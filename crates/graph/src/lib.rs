//! Graph substrate for the arrow matrix decomposition.
//!
//! Sparse matrices in this workspace are adjacency matrices of undirected
//! graphs (§2 of the paper); this crate provides the graph side of that
//! correspondence:
//!
//! * [`Graph`] — CSR adjacency structure with `O(1)` neighbour access,
//! * [`builder::GraphBuilder`] — edge-list staging with deduplication,
//! * traversals, connected components and union-find,
//! * [`mst`] — random spanning forests (step 1–2 of the §5.3 heuristic),
//! * [`separator`] — 2/3-separators (tree centroids, BFS-level heuristic),
//! * [`zipf`] — the truncated Zipf distribution of §5.6 with the Theorem 1
//!   survival bound,
//! * [`generators`] — graph families for the theory experiments and
//!   synthetic stand-ins for the SuiteSparse datasets of Table 2.

pub mod bounds;
pub mod builder;
pub mod degree;
pub mod generators;
pub mod graph;
pub mod mst;
pub mod separator;
pub mod traversal;
pub mod union_find;
pub mod zipf;

pub use builder::GraphBuilder;
pub use graph::Graph;
pub use union_find::UnionFind;
