//! Breadth-first search and connected components.

use crate::graph::Graph;

/// Result of a BFS from a source: levels (`u32::MAX` for unreachable) and
/// the visit order.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `level[v]` = hop distance from the source, `u32::MAX` if unreachable.
    pub level: Vec<u32>,
    /// Vertices in visit order (only reachable ones).
    pub order: Vec<u32>,
}

impl BfsResult {
    /// The largest finite level (eccentricity of the source within its
    /// component).
    pub fn eccentricity(&self) -> u32 {
        self.order
            .iter()
            .map(|&v| self.level[v as usize])
            .max()
            .unwrap_or(0)
    }
}

/// BFS from `source` over the whole graph.
pub fn bfs(g: &Graph, source: u32) -> BfsResult {
    bfs_filtered(g, source, |_| true)
}

/// BFS from `source` restricted to vertices with `allow(v) == true`.
/// The source itself must be allowed.
pub fn bfs_filtered(g: &Graph, source: u32, allow: impl Fn(u32) -> bool) -> BfsResult {
    let n = g.n() as usize;
    let mut level = vec![u32::MAX; n];
    let mut order = Vec::new();
    debug_assert!(allow(source));
    level[source as usize] = 0;
    order.push(source);
    let mut head = 0usize;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for &v in g.neighbors(u) {
            if level[v as usize] == u32::MAX && allow(v) {
                level[v as usize] = level[u as usize] + 1;
                order.push(v);
            }
        }
    }
    BfsResult { level, order }
}

/// A vertex far from an arbitrary start, found by repeated BFS — the
/// standard pseudo-peripheral heuristic used to seed level separators and
/// Cuthill-McKee.
pub fn pseudo_peripheral(g: &Graph, start: u32) -> u32 {
    let mut current = start;
    let mut ecc = bfs(g, current).eccentricity();
    loop {
        let res = bfs(g, current);
        let far = *res.order.last().unwrap_or(&current);
        let far_ecc = bfs(g, far).eccentricity();
        if far_ecc > ecc {
            ecc = far_ecc;
            current = far;
        } else {
            return far;
        }
    }
}

/// Grows a vertex region by weak connectivity, with barrier vertices.
///
/// On entry, `region[v] == true` marks the seed set. The traversal adds
/// every vertex weakly connected to a seed, except that a non-seed
/// vertex with `through(v) == false` joins the region when reached but
/// does **not** propagate further (a *barrier*). Seeds always propagate.
///
/// This is the affected-region primitive of incremental
/// re-decomposition: touched vertices seed the region, vertices of a
/// level's band expand it component-wise, and the level's pruned hubs
/// act as barriers (an arm row absorbs its incident edges whatever the
/// rest of the arrangement does, so connectivity *through* a hub does
/// not constrain the re-arranged band).
///
/// `region.len()` must equal `g.n()`. Runs in `O(n + m)`.
pub fn grow_region(g: &Graph, through: impl Fn(u32) -> bool, region: &mut [bool]) {
    let n = g.n() as usize;
    assert_eq!(region.len(), n, "region mask must cover every vertex");
    let mut queue: Vec<u32> = (0..g.n()).filter(|&v| region[v as usize]).collect();
    let mut expanded = vec![false; n];
    for &v in &queue {
        expanded[v as usize] = true;
    }
    while let Some(u) = queue.pop() {
        for &v in g.neighbors(u) {
            region[v as usize] = true;
            if !expanded[v as usize] && through(v) {
                expanded[v as usize] = true;
                queue.push(v);
            }
        }
    }
}

/// Connected component labelling.
#[derive(Debug, Clone)]
pub struct Components {
    /// `comp[v]` = component id in `0..count`.
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: u32,
    /// `sizes[c]` = vertex count of component `c`.
    pub sizes: Vec<u32>,
}

impl Components {
    /// Component ids sorted by decreasing size.
    pub fn by_decreasing_size(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.count).collect();
        ids.sort_by_key(|&c| std::cmp::Reverse(self.sizes[c as usize]));
        ids
    }

    /// The vertices of each component, grouped: `groups[c]` lists the
    /// vertices of component `c` in increasing order.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups: Vec<Vec<u32>> = self
            .sizes
            .iter()
            .map(|&s| Vec::with_capacity(s as usize))
            .collect();
        for (v, &c) in self.comp.iter().enumerate() {
            groups[c as usize].push(v as u32);
        }
        groups
    }
}

/// Labels connected components with iterative BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.n() as usize;
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = Vec::new();
    for s in 0..g.n() {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0u32;
        comp[s as usize] = id;
        queue.clear();
        queue.push(s);
        while let Some(u) = queue.pop() {
            size += 1;
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = id;
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }
    Components {
        comp,
        count: sizes.len() as u32,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> Graph {
        // Path 0-1-2 and edge 3-4, isolated 5.
        Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)])
    }

    #[test]
    fn bfs_levels() {
        let g = two_components();
        let r = bfs(&g, 0);
        assert_eq!(r.level[0], 0);
        assert_eq!(r.level[1], 1);
        assert_eq!(r.level[2], 2);
        assert_eq!(r.level[3], u32::MAX);
        assert_eq!(r.eccentricity(), 2);
        assert_eq!(r.order.len(), 3);
    }

    #[test]
    fn bfs_filtered_respects_mask() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bfs_filtered(&g, 0, |v| v != 1);
        assert_eq!(r.order, vec![0]);
        assert_eq!(r.level[2], u32::MAX);
    }

    #[test]
    fn components_found() {
        let g = two_components();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.comp[0], c.comp[2]);
        assert_ne!(c.comp[0], c.comp[3]);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(c.by_decreasing_size().len(), 3);
        let groups = c.groups();
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), 6);
    }

    #[test]
    fn pseudo_peripheral_on_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = pseudo_peripheral(&g, 2);
        assert!(p == 0 || p == 4, "endpoint of the path expected, got {p}");
    }

    #[test]
    fn grow_region_expands_components_and_respects_barriers() {
        // Path 0-1-2-3-4; vertex 2 is a barrier.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut region = vec![false; 5];
        region[0] = true;
        grow_region(&g, |v| v != 2, &mut region);
        // 2 joins (neighbour of 1) but does not propagate to 3.
        assert_eq!(region, vec![true, true, true, false, false]);
        // A barrier *seed* propagates (and its neighbours carry on).
        let mut region = vec![false; 5];
        region[2] = true;
        grow_region(&g, |v| v != 2, &mut region);
        assert_eq!(region, vec![true; 5]);
        // Without barriers the whole component joins; other components
        // stay out.
        let g2 = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let mut region = vec![false; 6];
        region[1] = true;
        grow_region(&g2, |_| true, &mut region);
        assert_eq!(region, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::empty(1);
        let r = bfs(&g, 0);
        assert_eq!(r.order, vec![0]);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
    }
}
