//! Graph generators.
//!
//! Three groups:
//!
//! * [`basic`] — elementary families (paths, stars, grids, complete d-ary
//!   trees) used by unit tests and the Table 1 experiments,
//! * [`structured`] — families with known separator/treewidth structure
//!   (caterpillars, series-parallel graphs, k-trees),
//! * [`random`] — random trees and Chung-Lu power-law graphs,
//! * [`datasets`] — synthetic stand-ins matching the density signatures of
//!   the SuiteSparse datasets in Table 2 of the paper.

pub mod basic;
pub mod datasets;
pub mod random;
pub mod rmat;
pub mod structured;
