//! Random graph models: uniform-attachment trees, degree-driven trees and
//! Chung-Lu power-law graphs.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use rand::Rng;

/// Random recursive tree: vertex `v ≥ 1` attaches to a uniformly random
/// earlier vertex.
pub fn random_tree<R: Rng>(n: u32, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    for v in 1..n {
        b.add_edge(rng.gen_range(0..v), v);
    }
    b.build()
}

/// Preferential-attachment tree (Barabási–Albert with one edge per new
/// vertex) — produces a power-law degree tail, used by the pruning
/// ablation.
pub fn preferential_tree<R: Rng>(n: u32, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    // endpoint multiset: each edge contributes both endpoints, so sampling
    // uniformly from it is degree-proportional.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n as usize);
    if n >= 2 {
        b.add_edge(0, 1);
        endpoints.extend_from_slice(&[0, 1]);
    }
    for v in 2..n {
        let target = endpoints[rng.gen_range(0..endpoints.len())];
        b.add_edge(target, v);
        endpoints.push(target);
        endpoints.push(v);
    }
    b.build()
}

/// Tree whose degree sequence approximately follows `degrees`
/// (1-indexed target degrees; entries are capacities). Vertices are
/// attached greedily to the earliest vertex with remaining capacity,
/// falling back to vertex 0 when capacities are exhausted.
///
/// Used to build the Zipf-degree trees of Corollary 2.
pub fn tree_with_degree_targets(degrees: &[u32]) -> Graph {
    let n = degrees.len() as u32;
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    if n == 0 {
        return b.build();
    }
    let mut remaining: Vec<i64> = degrees.iter().map(|&d| d.max(1) as i64).collect();
    // Queue of vertices with free slots, processed FIFO for balance.
    let mut open = std::collections::VecDeque::new();
    open.push_back(0u32);
    for v in 1..n {
        // Find an open vertex with capacity.
        let parent = loop {
            match open.front().copied() {
                Some(p) if remaining[p as usize] > 0 => break p,
                Some(_) => {
                    open.pop_front();
                }
                None => break 0,
            }
        };
        b.add_edge(parent, v);
        remaining[parent as usize] -= 1;
        remaining[v as usize] -= 1; // one slot used by the parent link
        if remaining[v as usize] > 0 {
            open.push_back(v);
        }
    }
    b.build()
}

/// Chung-Lu-style power-law graph: samples edges with endpoints drawn
/// proportionally to `weights` until `m` *unique* edges exist (self-loops
/// and duplicates are rejected and re-drawn, capped at `8·m` attempts, so
/// heavy-tailed weight vectors cannot stall the generator).
pub fn chung_lu<R: Rng>(weights: &[f64], m: usize, rng: &mut R) -> Graph {
    let n = weights.len() as u32;
    let sampler = AliasTable::new(weights);
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(8) + 16;
    while seen.len() < m && attempts < max_attempts {
        attempts += 1;
        let u = sampler.sample(rng);
        let v = sampler.sample(rng);
        if u != v && seen.insert(if u < v { (u, v) } else { (v, u) }) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Walker alias table for O(1) sampling from a discrete distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not all zero).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs positive total weight");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in large {
            prob[i as usize] = 1.0;
        }
        for i in small {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draws one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_tree_is_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_tree(100, &mut rng);
        assert_eq!(g.m(), 99);
        assert_eq!(connected_components(&g).count, 1);
    }

    #[test]
    fn preferential_tree_has_skewed_degrees() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = preferential_tree(2000, &mut rng);
        assert_eq!(g.m(), 1999);
        assert_eq!(connected_components(&g).count, 1);
        // Preferential attachment should produce a hub much larger than
        // a uniform tree's typical max degree (~log n).
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    fn degree_target_tree_respects_targets_roughly() {
        // One big hub and many unit-capacity leaves.
        let mut degrees = vec![1u32; 50];
        degrees[0] = 49;
        let g = tree_with_degree_targets(&degrees);
        assert_eq!(g.m(), 49);
        assert_eq!(connected_components(&g).count, 1);
        assert_eq!(g.degree(0), 49);
    }

    #[test]
    fn degree_target_tree_handles_exhausted_capacity() {
        // All capacities 1: every attach exhausts; fallback keeps it a tree.
        let g = tree_with_degree_targets(&[1, 1, 1, 1]);
        assert_eq!(g.m(), 3);
        assert_eq!(connected_components(&g).count, 1);
    }

    #[test]
    fn alias_table_distribution() {
        let t = AliasTable::new(&[1.0, 3.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut counts = [0usize; 2];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn alias_table_rejects_zero_weights() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn chung_lu_prefers_heavy_vertices() {
        let mut weights = vec![1.0; 500];
        weights[0] = 200.0;
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = chung_lu(&weights, 1000, &mut rng);
        assert!(g.degree(0) > 50, "hub degree {}", g.degree(0));
        assert!(g.m() <= 1000);
        assert!(g.m() > 500);
    }
}
