//! Synthetic stand-ins for the SuiteSparse datasets of Table 2.
//!
//! The paper evaluates on eight matrices whose decisive properties are
//! their density signatures (Table 2) and structure:
//!
//! | Dataset      | nnz/n | Δ          | structure                         |
//! |--------------|-------|------------|-----------------------------------|
//! | MAWI         | 2.1   | ≈ 0.93 · n | a few giant stars + sparse rest   |
//! | GenBank      | 2.1   | 8–35       | k-mer graph: long, branchy paths  |
//! | WebBase      | 8.6   | ≈ 0.7% · n | power law, moderate skew          |
//! | OSM Europe   | 2.1   | 13         | road network: chains of degree 2  |
//! | GAP-twitter  | 23.9  | ≈ 1.25%· n | heavy power law                   |
//! | sk-2005      | 38.5  | ≈ 17% · n  | very heavy power law              |
//!
//! Each generator reproduces that signature at a caller-chosen scale `n`.
//! The decomposition and the SpMM baselines only "see" the degree
//! distribution and sparsity structure, so matching the signature
//! preserves the experimental behaviour (see DESIGN.md §1).

use crate::builder::GraphBuilder;
use crate::generators::random::{chung_lu, AliasTable};
use crate::graph::Graph;
use crate::zipf::TruncatedZipf;
use rand::Rng;

/// Identifier for the eight Table 2 datasets (scaled stand-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MAWI traffic trace (giant stars): `mawi_201512020030` family.
    Mawi,
    /// GenBank k-mer graph: `kmer_V1r` family.
    GenBank,
    /// WebBase 2001 web crawl.
    WebBase,
    /// OSM Europe road network.
    OsmEurope,
    /// GAP-twitter follower graph.
    GapTwitter,
    /// sk-2005 web crawl.
    Sk2005,
}

impl DatasetKind {
    /// All kinds in the order of Figure 5 of the paper.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::Mawi,
        DatasetKind::GenBank,
        DatasetKind::WebBase,
        DatasetKind::OsmEurope,
        DatasetKind::GapTwitter,
        DatasetKind::Sk2005,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Mawi => "MAWI",
            DatasetKind::GenBank => "GenBank",
            DatasetKind::WebBase => "WebBase",
            DatasetKind::OsmEurope => "OSM-Europe",
            DatasetKind::GapTwitter => "GAP-twitter",
            DatasetKind::Sk2005 => "sk-2005",
        }
    }

    /// Target `nnz(A)/n` from Table 2.
    pub fn target_avg_degree(&self) -> f64 {
        match self {
            DatasetKind::Mawi => 2.1,
            DatasetKind::GenBank => 2.1,
            DatasetKind::WebBase => 8.63,
            DatasetKind::OsmEurope => 2.12,
            DatasetKind::GapTwitter => 23.85,
            DatasetKind::Sk2005 => 38.5,
        }
    }

    /// Target Δ as a fraction of `n` (approximate; Table 2).
    pub fn target_max_degree_fraction(&self) -> f64 {
        match self {
            DatasetKind::Mawi => 0.93,
            DatasetKind::GenBank => 0.0, // bounded constant (≤ 35)
            DatasetKind::WebBase => 0.0069,
            DatasetKind::OsmEurope => 0.0, // bounded constant (≤ 13)
            DatasetKind::GapTwitter => 0.0125,
            DatasetKind::Sk2005 => 0.17,
        }
    }

    /// Generates the stand-in graph at scale `n`.
    pub fn generate<R: Rng>(&self, n: u32, rng: &mut R) -> Graph {
        match self {
            DatasetKind::Mawi => mawi_like(n, rng),
            DatasetKind::GenBank => genbank_like(n, rng),
            DatasetKind::WebBase => webbase_like(n, rng),
            DatasetKind::OsmEurope => osm_like(n, rng),
            DatasetKind::GapTwitter => gap_twitter_like(n, rng),
            DatasetKind::Sk2005 => sk2005_like(n, rng),
        }
    }
}

/// MAWI-like: one giant star covering ≈ 90% of the vertices, a few
/// second-tier stars, and chains filling the remaining average degree to
/// ≈ 2.1 (`Δ ≈ 0.93 n`, giant stars cause the pruning behaviour of §7.2).
pub fn mawi_like<R: Rng>(n: u32, rng: &mut R) -> Graph {
    assert!(n >= 16, "mawi_like needs n >= 16");
    let mut b = GraphBuilder::with_capacity(n, (1.05 * n as f64) as usize + 8);
    let hub = 0u32;
    let giant = (0.90 * n as f64) as u32;
    for v in 1..=giant {
        b.add_edge(hub, v);
    }
    // Second-tier hubs with stars over a few percent of the vertices each.
    let tier2 = [(giant + 1, n / 50), (giant + 2, n / 100)];
    for &(h, size) in &tier2 {
        for _ in 0..size {
            let leaf = rng.gen_range(0..n);
            if leaf != h {
                b.add_edge(h, leaf);
            }
        }
    }
    // Sparse chains among the non-hub tail to reach nnz/n ≈ 2.1 (m ≈ 1.05 n).
    let target_m = (1.05 * n as f64) as usize;
    while b.staged_edges() < target_m {
        let u = rng.gen_range(1..n);
        let v = rng.gen_range(1..n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// GenBank-like k-mer graph: a union of long paths with occasional
/// branching, maximum degree bounded by a small constant (paper: 8–35).
pub fn genbank_like<R: Rng>(n: u32, rng: &mut R) -> Graph {
    assert!(n >= 16);
    let mut b = GraphBuilder::with_capacity(n, (1.05 * n as f64) as usize);
    // Partition vertices into paths of random length 50..500.
    let mut v = 0u32;
    while v < n {
        let len = rng.gen_range(50..500).min(n - v);
        for i in 1..len {
            b.add_edge(v + i - 1, v + i);
        }
        v += len;
    }
    // Branching: ~5% extra edges between nearby vertices (k-mer overlaps),
    // keeping the degree bounded.
    let extra = n / 20;
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let offset = rng.gen_range(2..40);
        let w = (u + offset).min(n - 1);
        if u != w {
            b.add_edge(u, w);
        }
    }
    b.build()
}

/// WebBase-like: Chung-Lu with truncated-Zipf weights capped at
/// `0.7% · n`, average degree ≈ 8.6.
pub fn webbase_like<R: Rng>(n: u32, rng: &mut R) -> Graph {
    power_law_like(n, 8.63, 0.0069, 1.9, rng)
}

/// GAP-twitter-like: heavier power law, average degree ≈ 23.9, Δ ≈ 1.25% n.
pub fn gap_twitter_like<R: Rng>(n: u32, rng: &mut R) -> Graph {
    power_law_like(n, 23.85, 0.0125, 1.8, rng)
}

/// sk-2005-like: very heavy power law, average degree ≈ 38.5, Δ ≈ 17% n.
pub fn sk2005_like<R: Rng>(n: u32, rng: &mut R) -> Graph {
    power_law_like(n, 38.5, 0.17, 1.6, rng)
}

/// Common power-law scaffold: Zipf(α) vertex weights capped at
/// `max_frac · n`, then Chung-Lu sampling of `avg_degree · n / 2` edges,
/// with a final boost of the heaviest vertex to hit the Δ target.
fn power_law_like<R: Rng>(
    n: u32,
    avg_degree: f64,
    max_frac: f64,
    alpha: f64,
    rng: &mut R,
) -> Graph {
    assert!(n >= 64);
    let zipf = TruncatedZipf::new(n as u64, alpha);
    let cap = (max_frac * n as f64).max(8.0);
    let mut weights: Vec<f64> = (0..n).map(|_| (zipf.sample(rng) as f64).min(cap)).collect();
    // Give vertex 0 the cap weight so Δ lands near the target.
    weights[0] = cap;
    let m = (avg_degree * n as f64 / 2.0) as usize;
    let g = chung_lu(&weights, m, rng);
    // Ensure the hub really has ≈ cap neighbours (Chung-Lu undershoots for
    // weights comparable to n): top it up explicitly.
    let hub_target = cap as u32;
    if g.degree(0) < hub_target {
        let mut b = GraphBuilder::with_capacity(n, g.m() + hub_target as usize);
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        let sampler = AliasTable::new(&weights);
        let mut added = g.degree(0);
        let mut attempts = 0;
        while added < hub_target && attempts < 4 * hub_target {
            attempts += 1;
            let v = sampler.sample(rng);
            if v != 0 && !g.has_edge(0, v) {
                b.add_edge(0, v);
                added += 1;
            }
        }
        b.build()
    } else {
        g
    }
}

/// OSM-like road network: a sparse grid of intersections whose road
/// segments are subdivided into chains, giving mostly degree-2 vertices,
/// bounded maximum degree, and near-planar structure.
pub fn osm_like<R: Rng>(n: u32, rng: &mut R) -> Graph {
    assert!(n >= 64);
    // Roughly n / (1 + chain) intersections on a grid; chain ≈ 8 gives the
    // degree-2-dominated profile of road networks.
    let chain = 8u32;
    let intersections = (n / (1 + chain)).max(4);
    let side = (intersections as f64).sqrt().ceil() as u32;
    let mut b = GraphBuilder::with_capacity(n, (1.1 * n as f64) as usize);
    let mut next = side * side; // chain vertices start after the grid block
    let grid_edges = {
        let mut e = Vec::new();
        for y in 0..side {
            for x in 0..side {
                let v = y * side + x;
                if x + 1 < side {
                    e.push((v, v + 1));
                }
                if y + 1 < side {
                    e.push((v, v + side));
                }
            }
        }
        e
    };
    for (u, w) in grid_edges {
        // Subdivide u—w into a chain with `chain` interior vertices while
        // capacity remains; otherwise add the direct edge.
        if next + chain <= n && rng.gen_bool(0.96) {
            let mut prev = u;
            for _ in 0..chain {
                b.add_edge(prev, next);
                prev = next;
                next += 1;
            }
            b.add_edge(prev, w);
        } else if rng.gen_bool(0.96) {
            // 4% of segments randomly deleted (missing roads).
            b.add_edge(u, w);
        }
    }
    // Attach any unused chain vertices as pendant spurs (dead ends).
    while next < n {
        let u = rng.gen_range(0..next);
        b.add_edge(u, next);
        next += 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(20240314)
    }

    #[test]
    fn mawi_signature() {
        let g = mawi_like(20_000, &mut rng());
        let s = DegreeStats::of(&g);
        assert!(
            s.max_degree_fraction() > 0.85,
            "Δ/n = {}",
            s.max_degree_fraction()
        );
        assert!((1.7..2.6).contains(&s.avg_degree), "avg = {}", s.avg_degree);
    }

    #[test]
    fn genbank_signature() {
        let g = genbank_like(20_000, &mut rng());
        let s = DegreeStats::of(&g);
        assert!(s.max_degree <= 40, "Δ = {}", s.max_degree);
        assert!((1.8..2.4).contains(&s.avg_degree), "avg = {}", s.avg_degree);
        assert_eq!(s.median_degree, 2); // path-dominated
    }

    #[test]
    fn webbase_signature() {
        let g = webbase_like(20_000, &mut rng());
        let s = DegreeStats::of(&g);
        assert!(
            (6.0..11.0).contains(&s.avg_degree),
            "avg = {}",
            s.avg_degree
        );
        let frac = s.max_degree_fraction();
        assert!((0.003..0.02).contains(&frac), "Δ/n = {frac}");
    }

    #[test]
    fn osm_signature() {
        let g = osm_like(20_000, &mut rng());
        let s = DegreeStats::of(&g);
        assert!(s.max_degree <= 16, "Δ = {}", s.max_degree);
        assert!((1.8..2.6).contains(&s.avg_degree), "avg = {}", s.avg_degree);
        assert_eq!(s.median_degree, 2);
    }

    #[test]
    fn gap_twitter_signature() {
        let g = gap_twitter_like(10_000, &mut rng());
        let s = DegreeStats::of(&g);
        assert!(
            (15.0..30.0).contains(&s.avg_degree),
            "avg = {}",
            s.avg_degree
        );
        assert!(
            s.max_degree_fraction() > 0.008,
            "Δ/n = {}",
            s.max_degree_fraction()
        );
    }

    #[test]
    fn sk2005_signature() {
        let g = sk2005_like(5_000, &mut rng());
        let s = DegreeStats::of(&g);
        assert!(
            (25.0..50.0).contains(&s.avg_degree),
            "avg = {}",
            s.avg_degree
        );
        assert!(
            s.max_degree_fraction() > 0.10,
            "Δ/n = {}",
            s.max_degree_fraction()
        );
    }

    #[test]
    fn all_kinds_generate_and_name() {
        let mut r = rng();
        for kind in DatasetKind::ALL {
            let g = kind.generate(2_000, &mut r);
            assert_eq!(g.n(), 2_000);
            assert!(g.m() > 0);
            assert!(!kind.name().is_empty());
            assert!(kind.target_avg_degree() > 0.0);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = mawi_like(5_000, &mut ChaCha8Rng::seed_from_u64(7));
        let b = mawi_like(5_000, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = mawi_like(5_000, &mut ChaCha8Rng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}
