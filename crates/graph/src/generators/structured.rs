//! Families with known separator / treewidth structure, used by the
//! Table 1 linear-arrangement experiments.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use rand::Rng;

/// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves. Total `spine * (1 + legs)` vertices.
pub fn caterpillar(spine: u32, legs: u32) -> Graph {
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    for s in 1..spine {
        b.add_edge(s - 1, s);
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge(s, next);
            next += 1;
        }
    }
    b.build()
}

/// Random series-parallel graph on `n ≥ 2` vertices.
///
/// Built by recursive series/parallel composition over terminal pairs:
/// start with the edge `(s, t)` and repeatedly either subdivide (series)
/// or duplicate (parallel, realised as a new internal vertex forming a
/// second s–t path to keep the graph simple). Series-parallel graphs have
/// treewidth ≤ 2 and the `O(n log n)` MLA bound of Table 1.
pub fn series_parallel<R: Rng>(n: u32, rng: &mut R) -> Graph {
    assert!(n >= 2);
    // Edges as terminal pairs we can expand.
    let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
    let mut next = 2u32;
    while next < n {
        let idx = rng.gen_range(0..edges.len());
        let (s, t) = edges[idx];
        if rng.gen_bool(0.5) {
            // Series: s—t becomes s—x—t.
            edges.swap_remove(idx);
            edges.push((s, next));
            edges.push((next, t));
        } else {
            // Parallel with simpleness: add a second path s—x—t, keep s—t.
            edges.push((s, next));
            edges.push((next, t));
        }
        next += 1;
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Random `k`-tree on `n ≥ k + 1` vertices (treewidth exactly `k` for
/// `n > k`): start from a `(k+1)`-clique; every further vertex is joined to
/// a uniformly chosen existing `k`-clique.
pub fn k_tree<R: Rng>(n: u32, k: u32, rng: &mut R) -> Graph {
    assert!(n > k);
    let mut b = GraphBuilder::with_capacity(n, (n as usize) * (k as usize));
    // Initial clique 0..=k.
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    let base: Vec<u32> = (0..=k).collect();
    for i in 0..base.len() {
        for j in (i + 1)..base.len() {
            b.add_edge(base[i], base[j]);
        }
    }
    // All k-subsets of the base clique are candidate attachment cliques.
    for skip in 0..base.len() {
        let mut c = base.clone();
        c.remove(skip);
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let c = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &c {
            b.add_edge(u, v);
        }
        // New k-cliques: c with one member replaced by v.
        for skip in 0..c.len() {
            let mut nc = c.clone();
            nc[skip] = v;
            cliques.push(nc);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 11); // tree
        assert_eq!(connected_components(&g).count, 1);
        // Spine interior vertex: 2 spine edges + 2 legs.
        assert_eq!(g.degree(1), 4);
    }

    #[test]
    fn series_parallel_connected_and_sized() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = series_parallel(50, &mut rng);
        assert_eq!(g.n(), 50);
        assert_eq!(connected_components(&g).count, 1);
        // Series-parallel graphs have m ≤ 2n − 3.
        assert!(g.m() <= 2 * 50 - 3);
    }

    #[test]
    fn k_tree_clique_degrees() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = k_tree(40, 3, &mut rng);
        assert_eq!(g.n(), 40);
        assert_eq!(connected_components(&g).count, 1);
        // Every vertex beyond the base clique adds exactly k edges.
        assert_eq!(g.m(), 6 + 36 * 3);
        // Minimum degree is k.
        assert!((0..40).all(|v| g.degree(v) >= 3));
    }

    #[test]
    fn k_tree_minimal() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = k_tree(3, 2, &mut rng);
        assert_eq!(g.m(), 3); // triangle
    }
}
