//! Elementary graph families.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Path on `n` vertices: `0 — 1 — … — n−1`.
pub fn path(n: u32) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    for v in 1..n {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle on `n ≥ 3` vertices.
pub fn cycle(n: u32) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    for v in 1..n {
        b.add_edge(v - 1, v);
    }
    b.add_edge(n - 1, 0);
    b.build()
}

/// Star on `n` vertices with hub `0`.
pub fn star(n: u32) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    for v in 1..n {
        b.add_edge(0, v);
    }
    b.build()
}

/// Complete `d`-ary tree on exactly `n` vertices in BFS numbering: vertex
/// `v > 0` has parent `(v − 1) / d`.
pub fn complete_ary_tree(d: u32, n: u32) -> Graph {
    assert!(d >= 1);
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    for v in 1..n {
        b.add_edge((v - 1) / d, v);
    }
    b.build()
}

/// `w × h` grid graph (4-neighbourhood), the canonical planar family.
/// Vertex `(x, y)` has index `y * w + x`.
pub fn grid_2d(w: u32, h: u32) -> Graph {
    let n = w * h;
    let mut b = GraphBuilder::with_capacity(n, 2 * n as usize);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                b.add_edge(v, v + 1);
            }
            if y + 1 < h {
                b.add_edge(v, v + w);
            }
        }
    }
    b.build()
}

/// Complete graph on `n` vertices (test-scale only: `O(n²)` edges).
pub fn complete(n: u32) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, (n as usize * (n as usize - 1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn path_properties() {
        let g = path(5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(connected_components(&g).count, 1);
        assert_eq!(path(1).m(), 0);
        assert_eq!(path(0).n(), 0);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle(6);
        assert_eq!(g.m(), 6);
        assert!((0..6).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_properties() {
        let g = star(7);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn ary_tree_structure() {
        let g = complete_ary_tree(2, 7);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3); // parent + two children
        assert_eq!(g.degree(6), 1); // leaf
        assert_eq!(connected_components(&g).count, 1);
        // 3-ary
        let t = complete_ary_tree(3, 13);
        assert_eq!(t.degree(0), 3);
    }

    #[test]
    fn grid_structure() {
        let g = grid_2d(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), (3 - 1) * 4 + 3 * (4 - 1));
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(4), 4); // interior (1,1)
        assert_eq!(connected_components(&g).count, 1);
    }

    #[test]
    fn complete_graph() {
        let g = complete(5);
        assert_eq!(g.m(), 10);
        assert!((0..5).all(|v| g.degree(v) == 4));
    }
}
