//! R-MAT / Kronecker-style recursive graph generator.
//!
//! The Graph500 and GAP benchmark suites (the origin of the paper's
//! GAP-twitter dataset) generate scale-free graphs by recursively
//! subdividing the adjacency matrix into quadrants with probabilities
//! `(a, b, c, d)`. This generator complements the Chung-Lu stand-ins: it
//! produces the community-like self-similar structure of real crawls and
//! is used by the extended tests to stress the decomposition on a second
//! power-law model.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use rand::Rng;

/// R-MAT quadrant probabilities; must sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 parameter set `(0.57, 0.19, 0.19, 0.05)`.
    pub fn graph500() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Bottom-right probability `d = 1 − a − b − c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and ≈ `edge_factor ·
/// 2^scale` undirected edges (duplicates and self-loops dropped, so the
/// realised count is slightly lower — as in Graph500).
pub fn rmat<R: Rng>(scale: u32, edge_factor: u32, params: RmatParams, rng: &mut R) -> Graph {
    assert!((1..=30).contains(&scale), "scale out of range");
    let d = params.d();
    assert!(
        params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && d >= 0.0,
        "invalid R-MAT parameters"
    );
    let n = 1u32 << scale;
    let target = (edge_factor as usize) * (n as usize);
    let mut builder = GraphBuilder::with_capacity(n, target);
    for _ in 0..target {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < params.a {
                // top-left: nothing to add
            } else if r < params.a + params.b {
                v |= 1;
            } else if r < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn graph500_params_sum_to_one() {
        let p = RmatParams::graph500();
        assert!((p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sizes_and_skew() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = rmat(12, 8, RmatParams::graph500(), &mut rng);
        assert_eq!(g.n(), 4096);
        // Dedup eats some edges, but most survive.
        assert!(g.m() > 4096 * 4, "m = {}", g.m());
        let s = DegreeStats::of(&g);
        // Scale-free skew: hub far above the average.
        assert!(
            s.max_degree as f64 > 8.0 * s.avg_degree,
            "Δ = {} vs avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn uniform_params_give_erdos_renyi_like_degrees() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = rmat(
            10,
            8,
            RmatParams {
                a: 0.25,
                b: 0.25,
                c: 0.25,
            },
            &mut rng,
        );
        let s = DegreeStats::of(&g);
        // No heavy tail: max degree stays within a small factor of avg.
        assert!(
            (s.max_degree as f64) < 6.0 * s.avg_degree,
            "Δ = {} vs avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = rmat(
            8,
            4,
            RmatParams::graph500(),
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        let g2 = rmat(
            8,
            4,
            RmatParams::graph500(),
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "scale out of range")]
    fn scale_guard() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        rmat(0, 1, RmatParams::graph500(), &mut rng);
    }
}
