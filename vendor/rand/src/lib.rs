//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8/0.9 API this workspace uses:
//! the [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, uniform sampling from
//! ranges, and [`seq::SliceRandom`]. Method names cover both the 0.8
//! spelling (`gen`, `gen_range`, `gen_bool`) and the 0.9 spelling
//! (`random`, `random_range`, `random_bool`).

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (fixed-size byte array for the RNGs here).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction rand_core uses) and builds the RNG from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution: floats uniform in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over an interval (mirror of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics on empty intervals.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(&self.start, &self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start(), self.end(), true, rng)
    }
}

/// Rejection-free-enough uniform integer in `[0, bound)` via widening
/// multiply with rejection on the short interval (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: &Self,
                hi: &Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (*lo, *hi);
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: &Self,
                hi: &Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// rand 0.9 spelling of [`Rng::gen`].
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// rand 0.9 spelling of [`Rng::gen_range`].
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// rand 0.9 spelling of [`Rng::gen_bool`].
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::{uniform_u64, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on empty slices.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniformly random mutable element, `None` on empty slices.
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_u64(rng, self.len() as u64) as usize;
                Some(&mut self[i])
            }
        }
    }
}

pub mod rngs {
    //! Small self-contained RNGs.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the rand 0.8 `SmallRng` algorithm on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::SmallRng;

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
