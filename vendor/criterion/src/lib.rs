//! Offline stand-in for `criterion`: wall-clock micro-benchmarking with
//! the `Criterion`/`BenchmarkGroup`/`Bencher` API shape. No statistics
//! beyond warmup + mean-of-N; results print as plain text. Honors
//! `AMD_BENCH_QUICK=1` to cut sample counts for smoke runs.

use std::fmt;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// `name/param` identifier.
    pub fn new<P: fmt::Display>(name: impl Into<String>, param: P) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// Identifier with only a parameter (group provides the name).
    pub fn from_parameter<P: fmt::Display>(param: P) -> Self {
        Self {
            name: String::new(),
            param: param.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.name.is_empty() {
            self.param.clone()
        } else {
            format!("{}/{}", self.name, self.param)
        }
    }
}

/// Throughput basis for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u32,
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call outside the timed region.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput basis used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    fn record(&mut self, label: &str, bencher: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if bencher.mean_secs > 0.0 => {
                format!("  {:>12.3e} elem/s", n as f64 / bencher.mean_secs)
            }
            Some(Throughput::Bytes(n)) if bencher.mean_secs > 0.0 => {
                format!("  {:>12.3e} B/s", n as f64 / bencher.mean_secs)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12.3} µs/iter{}",
            format!("{}/{}", self.name, label),
            bencher.mean_secs * 1e6,
            rate
        );
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean_secs: 0.0,
        };
        f(&mut bencher, input);
        let label = id.label();
        self.record(&label, &bencher);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean_secs: 0.0,
        };
        f(&mut bencher);
        let id = id.into();
        let label = id.label();
        self.record(&label, &bencher);
        self
    }

    fn effective_samples(&self) -> u32 {
        if std::env::var("AMD_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            2
        } else {
            self.sample_size
        }
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        let _ = &self.parent;
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            param: String::new(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from_parameter("base"), f);
        group.finish();
        self
    }
}

/// Groups benchmark functions for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        group.finish();
    }
}
