//! Offline stand-in for `crossbeam-channel`: an unbounded MPMC channel
//! built on `Mutex<VecDeque>` + `Condvar`. Implements the
//! `unbounded`/`Sender`/`Receiver` subset the comm substrate uses, with
//! crossbeam's semantics: cloneable senders and receivers, `recv` blocks
//! until a message or disconnection.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    ready: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    senders: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
/// (The comm machine keeps receivers alive for the whole run, so this
/// only surfaces on programming errors.)
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`]: the deadline passed
/// with the channel still empty, or every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => write!(f, "timed out waiting on an empty channel"),
            Self::Disconnected => write!(f, "receiving on an empty and disconnected channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::new(),
            senders: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Appends `value`; never blocks.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.queue.lock().unwrap();
        inner.items.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().unwrap();
        inner.senders -= 1;
        let none_left = inner.senders == 0;
        drop(inner);
        if none_left {
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = inner.items.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.ready.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive; `None` when currently empty.
    pub fn try_recv(&self) -> Option<T> {
        self.shared.queue.lock().unwrap().items.pop_front()
    }

    /// Blocks until a message arrives, every sender is dropped, or
    /// `timeout` elapses — whichever comes first.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = inner.items.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            // Spurious wakeups and early notifies loop back around;
            // the deadline re-check above bounds the total wait.
            inner = self
                .shared
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap()
                .0;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded::<u64>();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 1000);
    }

    #[test]
    fn disconnect_unblocks_recv() {
        let (tx, rx) = unbounded::<()>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }
}
