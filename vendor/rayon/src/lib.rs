//! Offline stand-in for `rayon`, covering the `par_chunks_mut(..)
//! .enumerate().for_each(..)` pattern the SpMM kernels use. Work is
//! genuinely parallel: chunks are distributed round-robin over
//! `std::thread::scope` workers, one per available core, with a serial
//! fast path for small inputs.

use std::num::NonZeroUsize;

/// Number of worker threads to use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel iterator over enumerated mutable chunks.
pub struct EnumeratedParChunksMut<'a, T> {
    chunks: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> EnumeratedParChunksMut<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync + Send,
    {
        let threads = current_num_threads().min(self.chunks.len().max(1));
        if threads <= 1 || self.chunks.len() <= 1 {
            for item in self.chunks {
                f(item);
            }
            return;
        }
        // Round-robin deal so neighbouring (similar-cost) chunks spread
        // across workers.
        let mut buckets: Vec<Vec<(usize, &'a mut [T])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, item) in self.chunks.into_iter().enumerate() {
            buckets[i % threads].push(item);
        }
        let fref = &f;
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for item in bucket {
                        fref(item);
                    }
                });
            }
        });
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut {
            chunks: self.chunks.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync + Send,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

pub mod prelude {
    //! Parallel slice extension traits.
    use super::ParChunksMut;

    /// Mirror of `rayon::prelude::ParallelSliceMut`.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into mutable chunks of `size` elements for parallel
        /// processing (last chunk may be shorter).
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be positive");
            ParChunksMut {
                chunks: self.chunks_mut(size).collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerated_chunks_cover_slice() {
        let mut data = vec![0u64; 1000];
        data.as_mut_slice()
            .par_chunks_mut(7)
            .enumerate()
            .for_each(|(i, chunk)| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 7 + j) as u64;
                }
            });
        let expect: Vec<u64> = (0..1000).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn single_chunk_serial_path() {
        let mut data = vec![1u32; 5];
        data.as_mut_slice().par_chunks_mut(100).for_each(|chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert_eq!(data, vec![2; 5]);
    }
}
