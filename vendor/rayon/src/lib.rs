//! Offline stand-in for `rayon`, covering the `par_chunks_mut(..)
//! .enumerate().for_each(..)` pattern the SpMM kernels use. Work runs
//! on the persistent `amd-exec` work-stealing pool (the process-global
//! instance): chunks are pulled from a shared atomic counter by up to
//! `threads` runners, with a serial fast path for ≤ 1 chunk that spawns
//! nothing and allocates nothing beyond the chunk list itself.

/// Number of worker threads the underlying pool has.
pub fn current_num_threads() -> usize {
    amd_exec::requested_threads()
}

/// Parallel iterator over enumerated mutable chunks.
pub struct EnumeratedParChunksMut<'a, T> {
    chunks: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> EnumeratedParChunksMut<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair, in parallel on the
    /// shared pool. Chunk counts ≤ 1 run serially on the caller with no
    /// task dispatch at all.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync + Send,
    {
        if self.chunks.len() <= 1 {
            for item in self.chunks {
                f(item);
            }
            return;
        }
        amd_exec::global().for_each_take(self.chunks, |_, item| f(item));
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut {
            chunks: self.chunks.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync + Send,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

pub mod prelude {
    //! Parallel slice extension traits.
    use super::ParChunksMut;

    /// Mirror of `rayon::prelude::ParallelSliceMut`.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into mutable chunks of `size` elements for parallel
        /// processing (last chunk may be shorter).
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be positive");
            ParChunksMut {
                chunks: self.chunks_mut(size).collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerated_chunks_cover_slice() {
        let mut data = vec![0u64; 1000];
        data.as_mut_slice()
            .par_chunks_mut(7)
            .enumerate()
            .for_each(|(i, chunk)| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 7 + j) as u64;
                }
            });
        let expect: Vec<u64> = (0..1000).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn single_chunk_serial_path() {
        let mut data = vec![1u32; 5];
        data.as_mut_slice().par_chunks_mut(100).for_each(|chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert_eq!(data, vec![2; 5]);
    }

    #[test]
    fn single_chunk_runs_on_caller_thread() {
        // The ≤ 1 chunk fallthrough must not dispatch to the pool: the
        // closure observes the calling thread's id.
        let caller = std::thread::current().id();
        let mut data = vec![0u8; 16];
        data.as_mut_slice()
            .par_chunks_mut(16)
            .enumerate()
            .for_each(|(_, chunk)| {
                assert_eq!(std::thread::current().id(), caller);
                chunk.fill(1);
            });
        assert_eq!(data, vec![1; 16]);
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut data: Vec<u32> = Vec::new();
        data.as_mut_slice()
            .par_chunks_mut(4)
            .for_each(|_| panic!("must not run"));
    }
}
