//! Test configuration and the deterministic test RNG.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Failure raised by `prop_assert*` macros: returned as an `Err` from
/// the enclosing closure, like upstream proptest's `TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration for [`proptest!`](crate::proptest).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic RNG handed to strategies. Seeded from the test name so
/// every test explores its own stream, stable across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_test_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in name.as_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: ChaCha8Rng::seed_from_u64(h),
        }
    }

    /// An independent child RNG (for `prop_perturb`).
    pub fn fork(&mut self) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(self.inner.next_u64()),
        }
    }

    /// Draws a standard-distribution value (inherent so call sites don't
    /// need the `rand::Rng` trait in scope, matching upstream ergonomics).
    pub fn random<T: rand::Standard>(&mut self) -> T {
        rand::Rng::random(self)
    }

    /// Draws uniformly from `range`.
    pub fn random_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        rand::Rng::random_range(self, range)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
}
