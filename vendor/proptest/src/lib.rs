//! Offline stand-in for `proptest`: randomized property testing without
//! shrinking. Covers the API surface this workspace uses — the
//! [`proptest!`] macro with per-block `ProptestConfig`, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`/`prop_perturb`, range and tuple
//! strategies, [`collection::vec`], [`arbitrary::any`], `Just`, and the
//! `prop_assert*` macros.
//!
//! Failing cases are reported with the case number and the RNG seed is
//! derived deterministically from the test name, so failures reproduce
//! run-to-run.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` strategies for types with a canonical full-domain
    //! distribution.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical `any()` strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u32, u64, usize, i32, i64, bool, f64);

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy over an element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines randomized property tests.
///
/// Each `#[test] fn name(binding in strategy, ...) { body }` item becomes
/// a standard test that samples the strategies `cases` times (from the
/// optional leading `#![proptest_config(...)]`, default 256) and runs the
/// body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_test_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    // Mirror upstream: the body runs in a closure
                    // returning Result, so `return Ok(())` works for
                    // early exits and `prop_assert*` can `return Err`.
                    let __run = move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        { $body }
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(msg) = __run() {
                        panic!("case {__case} failed: {msg}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test; on failure, returns
/// `Err(TestCaseError)` from the enclosing closure (upstream semantics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} == {:?}", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {:?} != {:?}", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}
