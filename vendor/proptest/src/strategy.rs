//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::SampleRange;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// sampler. Combinators mirror the upstream names so test code is
/// source-compatible.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through `f` with access to a fork of the
    /// test RNG.
    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> U,
    {
        Perturb { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        let v = self.inner.sample(rng);
        (self.f)(v, rng.fork())
    }
}

/// Ranges are strategies over their numeric domain.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_from(self.clone(), rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Tuples of strategies are strategies over tuples.
macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);
