//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher in
//! counter mode, exposed as [`ChaCha8Rng`]. Deterministic for a given
//! seed across platforms and runs (the property the workspace relies on
//! for reproducible generators and tests).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state input block: constants, 8 key words, counter, nonce.
    key: [u32; 8],
    counter: u64,
    /// Buffered keystream block and read position.
    block: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    /// Current 64-bit block counter (blocks consumed so far).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chacha_keystream_changes_every_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let block1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(block1, block2);
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
