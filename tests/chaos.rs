//! End-to-end chaos harness tests at the facade level: built-in
//! scenarios run through `arrow_matrix::scenario`, the trace format
//! round-trips through disk, and the `chaos` CLI subcommand emits a
//! well-formed `BENCH_scenarios.json`. Lives in its own test binary so
//! the process-wide failpoint table is never shared with other tests.

use arrow_matrix::chaos::{failpoint, generators, ScenarioTrace, TraceOp};
use arrow_matrix::comm::MachineExec;
use arrow_matrix::engine::EngineConfig;
use arrow_matrix::scenario::{self, Expectation};
use arrow_matrix::sparse::{CooMatrix, CsrMatrix};
use arrow_matrix::stream::{HubConfig, StalenessBudget, StreamHub, Update};
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amd-chaos-test-{}-{name}", std::process::id()));
    p
}

/// A representative slice of the built-in suite: one supervised worker
/// death, one crash-window recovery, one fault-free adversarial
/// workload, and the 16-tenant power-law skew. (The full 12-scenario
/// suite runs in CI via the CLI; this keeps the test-suite wall clock
/// reasonable.)
#[test]
fn builtin_scenarios_pass_end_to_end() {
    failpoint::quiet_injected_panics();
    let picks = [
        "worker-kill",
        "crash-window-payload-rename",
        "adversarial-region",
        "tenant-skew",
    ];
    let suite = scenario::builtin_scenarios(7);
    for name in picks {
        let s = suite
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("builtin scenario {name} missing"));
        let report = scenario::run(s);
        assert!(report.passed, "{name} failed: {}", report.detail);
        assert!(report.verified > 0, "{name} verified no answers");
        assert_eq!(report.max_abs_err, 0.0, "{name} served inexactly");
        // Queries ran, so the latency tails must be populated and
        // ordered (nearest-rank percentiles of the same sample).
        assert!(report.latency_p50_ms > 0.0, "{name} has no p50");
        assert!(report.latency_p99_ms >= report.latency_p50_ms);
        assert!(report.latency_p999_ms >= report.latency_p99_ms);
    }
}

/// End-to-end execution determinism: the same chaos trace served by a
/// hub on the shared `amd-exec` pool bit-matches a hub that spawns a
/// fresh thread per machine rank. The simulated clocks are purely
/// logical, so pooled execution must be invisible in every answer.
#[test]
fn chaos_trace_is_bit_identical_pooled_vs_spawn_per_run() {
    failpoint::quiet_injected_panics();
    let trace = generators::zipf_tenant_skew(48, 4, 3, 4, 1.3, 23);
    let replay = |exec: MachineExec| -> Vec<Vec<f64>> {
        let n = trace.n as u32;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            coo.push(i, (i + 1) % n, 1.0).unwrap();
            coo.push((i + 1) % n, i, 1.0).unwrap();
        }
        let base: CsrMatrix<f64> = coo.to_csr();
        let mut hub = StreamHub::new(HubConfig {
            engine: EngineConfig {
                arrow_width: 16,
                ..EngineConfig::default()
            }
            .with_exec(exec),
            budget: StalenessBudget::nnz_fraction(1e9),
            auto_refresh: false,
            async_refresh: true,
            ..HubConfig::default()
        })
        .unwrap();
        let ids: Vec<_> = (0..trace.tenants)
            .map(|_| hub.admit(base.clone()).unwrap())
            .collect();
        let mut answers = Vec::new();
        for op in &trace.ops {
            match *op {
                TraceOp::Add {
                    tenant,
                    row,
                    col,
                    value,
                } => {
                    hub.update(
                        ids[tenant],
                        Update::Add {
                            row,
                            col,
                            delta: value,
                        },
                    )
                    .unwrap();
                }
                TraceOp::Set {
                    tenant,
                    row,
                    col,
                    value,
                } => {
                    hub.update(ids[tenant], Update::Set { row, col, value })
                        .unwrap();
                }
                TraceOp::Query {
                    tenant,
                    salt,
                    iters,
                } => {
                    let x: Vec<f64> = (0..n)
                        .map(|r| (((salt as u32).wrapping_add(3 * r) % 11) as f64) - 5.0)
                        .collect();
                    let resp = hub.run_single(ids[tenant], x, iters as u32, None).unwrap();
                    answers.push(resp.y);
                }
                TraceOp::Refresh { tenant } => {
                    hub.refresh(ids[tenant]).unwrap();
                }
                TraceOp::Settle => {
                    hub.wait_refreshes().unwrap();
                }
            }
        }
        hub.wait_refreshes().unwrap();
        answers
    };
    let pooled = replay(MachineExec::Global);
    let spawned = replay(MachineExec::SpawnPerRun);
    assert_eq!(pooled.len(), spawned.len());
    for (q, (p, s)) in pooled.iter().zip(&spawned).enumerate() {
        let pb: Vec<u64> = p.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u64> = s.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, sb, "query {q} answers must bit-match across exec modes");
    }
}

/// Record → save → load round-trips the trace bit-exactly, and the
/// loaded trace replays fault-free with exact serving.
#[test]
fn trace_roundtrip_and_replay() {
    failpoint::quiet_injected_panics();
    let path = tmp("roundtrip.trace");
    let trace = generators::oscillating(48, 2, 4, 99);
    trace.save(&path).unwrap();
    let loaded = ScenarioTrace::load(&path).unwrap();
    assert_eq!(loaded, trace, "the trace format must round-trip exactly");

    let replayed = scenario::run(&scenario::Scenario {
        name: "roundtrip-replay".to_string(),
        trace: loaded,
        plan: arrow_matrix::chaos::FaultPlan::new(0),
        with_catalog: false,
        crash_reopen: false,
        expect: Expectation::Exact,
    });
    assert!(replayed.passed, "replay failed: {}", replayed.detail);
    let _ = std::fs::remove_file(&path);
}

/// The `chaos` CLI subcommand runs a single scenario under its fault
/// plan and writes a well-formed scenario report artifact.
#[test]
fn chaos_cli_writes_scenario_report() {
    let out_path = tmp("scenarios.json");
    let out = Command::new(env!("CARGO_BIN_EXE_arrow-matrix-cli"))
        .args([
            "chaos",
            "worker-kill",
            "--seed",
            "7",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "chaos subcommand failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASS"), "no PASS line in: {stdout}");
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"schema\": \"amd-scenarios/1\""));
    assert!(json.contains("\"name\": \"worker-kill\""));
    assert!(json.contains("\"worker_restarts\""));
    assert!(json.contains("\"latency_p50_ms\""));
    assert!(json.contains("\"latency_p99_ms\""));
    assert!(json.contains("\"latency_p999_ms\""));
    assert!(json.contains("\"passed\": true"));
    let _ = std::fs::remove_file(&out_path);
}
