//! End-to-end chaos harness tests at the facade level: built-in
//! scenarios run through `arrow_matrix::scenario`, the trace format
//! round-trips through disk, and the `chaos` CLI subcommand emits a
//! well-formed `BENCH_scenarios.json`. Lives in its own test binary so
//! the process-wide failpoint table is never shared with other tests.

use arrow_matrix::chaos::{failpoint, generators, ScenarioTrace};
use arrow_matrix::scenario::{self, Expectation};
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amd-chaos-test-{}-{name}", std::process::id()));
    p
}

/// A representative slice of the built-in suite: one supervised worker
/// death, one crash-window recovery, and one fault-free adversarial
/// workload. (The full 11-scenario suite runs in CI via the CLI; this
/// keeps the test-suite wall clock reasonable.)
#[test]
fn builtin_scenarios_pass_end_to_end() {
    failpoint::quiet_injected_panics();
    let picks = [
        "worker-kill",
        "crash-window-payload-rename",
        "adversarial-region",
    ];
    let suite = scenario::builtin_scenarios(7);
    for name in picks {
        let s = suite
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("builtin scenario {name} missing"));
        let report = scenario::run(s);
        assert!(report.passed, "{name} failed: {}", report.detail);
        assert!(report.verified > 0, "{name} verified no answers");
        assert_eq!(report.max_abs_err, 0.0, "{name} served inexactly");
    }
}

/// Record → save → load round-trips the trace bit-exactly, and the
/// loaded trace replays fault-free with exact serving.
#[test]
fn trace_roundtrip_and_replay() {
    failpoint::quiet_injected_panics();
    let path = tmp("roundtrip.trace");
    let trace = generators::oscillating(48, 2, 4, 99);
    trace.save(&path).unwrap();
    let loaded = ScenarioTrace::load(&path).unwrap();
    assert_eq!(loaded, trace, "the trace format must round-trip exactly");

    let replayed = scenario::run(&scenario::Scenario {
        name: "roundtrip-replay".to_string(),
        trace: loaded,
        plan: arrow_matrix::chaos::FaultPlan::new(0),
        with_catalog: false,
        crash_reopen: false,
        expect: Expectation::Exact,
    });
    assert!(replayed.passed, "replay failed: {}", replayed.detail);
    let _ = std::fs::remove_file(&path);
}

/// The `chaos` CLI subcommand runs a single scenario under its fault
/// plan and writes a well-formed scenario report artifact.
#[test]
fn chaos_cli_writes_scenario_report() {
    let out_path = tmp("scenarios.json");
    let out = Command::new(env!("CARGO_BIN_EXE_arrow-matrix-cli"))
        .args([
            "chaos",
            "worker-kill",
            "--seed",
            "7",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "chaos subcommand failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASS"), "no PASS line in: {stdout}");
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"schema\": \"amd-scenarios/1\""));
    assert!(json.contains("\"name\": \"worker-kill\""));
    assert!(json.contains("\"worker_restarts\""));
    assert!(json.contains("\"passed\": true"));
    let _ = std::fs::remove_file(&out_path);
}
