//! Cross-crate property tests: the decomposition invariants must hold for
//! arbitrary random graphs and configurations, and the distributed
//! algorithms must agree with the serial reference on all of them.

use arrow_matrix::core::{la_decompose, DecomposeConfig, IdentityLa, RandomForestLa};
use arrow_matrix::graph::GraphBuilder;
use arrow_matrix::sparse::{CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::reference::iterated_spmm;
use arrow_matrix::spmm::{A15dSpmm, ArrowSpmm, DistSpmm};
use proptest::prelude::*;

/// Random graph: n in 8..80, m random edges (duplicates deduplicated).
fn graph_strategy() -> impl Strategy<Value = CsrMatrix<f64>> {
    (8u32..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..200).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build().to_adjacency()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_reconstructs_any_graph(
        a in graph_strategy(),
        b in 2u32..32,
        seed in 0u64..1000,
        prune in any::<bool>(),
    ) {
        let cfg = DecomposeConfig { arrow_width: b, prune, max_levels: 64 };
        let d = la_decompose(&a, &cfg, &mut RandomForestLa::new(seed)).unwrap();
        prop_assert_eq!(d.validate(&a).unwrap(), 0.0);
        prop_assert_eq!(d.nnz(), a.nnz());
        // Every level fits the arrow pattern (to_arrow succeeds).
        for level in d.levels() {
            prop_assert!(level.to_arrow(b).is_ok());
        }
    }

    #[test]
    fn distributed_arrow_matches_reference_on_any_graph(
        a in graph_strategy(),
        b in 4u32..24,
        k in 1u32..5,
        iters in 1u32..3,
    ) {
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(7),
        ).unwrap();
        if d.order() == 0 {
            return Ok(()); // empty matrix: nothing to distribute
        }
        let alg = ArrowSpmm::new(&d).unwrap();
        let x = DenseMatrix::from_fn(a.rows(), k, |r, c| ((r * 2 + c) % 5) as f64 - 2.0);
        let run = alg.run(&x, iters).unwrap();
        let expected = iterated_spmm(&a, &x, iters).unwrap();
        prop_assert!(run.y.max_abs_diff(&expected).unwrap() < 1e-6);
    }

    #[test]
    fn distributed_15d_matches_reference_on_any_graph(
        a in graph_strategy(),
        pc in (1u32..5).prop_flat_map(|c| (Just(c), 1u32..4)),
        k in 1u32..4,
    ) {
        let (c, mult) = pc;
        let p = c * mult; // guarantees c | p
        let alg = A15dSpmm::new(&a, p, c).unwrap();
        let x = DenseMatrix::from_fn(a.rows(), k, |r, cc| ((r + cc) % 7) as f64);
        let run = alg.run(&x, 1).unwrap();
        let expected = iterated_spmm(&a, &x, 1).unwrap();
        prop_assert!(run.y.max_abs_diff(&expected).unwrap() < 1e-6);
    }

    #[test]
    fn identity_strategy_still_correct(
        a in graph_strategy(),
        b in 2u32..16,
    ) {
        // Even a pessimal arrangement must produce a *valid* decomposition
        // (possibly deeper), or a clean convergence error — never a wrong
        // one.
        match la_decompose(
            &a,
            &DecomposeConfig { arrow_width: b, prune: false, max_levels: 64 },
            &mut IdentityLa,
        ) {
            Ok(d) => prop_assert_eq!(d.validate(&a).unwrap(), 0.0),
            Err(e) => prop_assert!(e.to_string().contains("converge")),
        }
    }
}
