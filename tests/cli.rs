//! Integration tests for the `arrow-matrix-cli` binary: the full
//! generate → info → decompose → multiply artifact workflow.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arrow-matrix-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amd-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_workflow() {
    let mtx = tmp("w.mtx");
    let amd = tmp("w.amd");
    // generate
    let out = cli()
        .args(["generate", "osm", "2000", mtx.to_str().unwrap(), "3"])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OSM-Europe"));
    // info
    let out = cli()
        .args(["info", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("2000 x 2000"), "info output: {text}");
    assert!(text.contains("bandwidth lower bound"));
    // decompose
    let out = cli()
        .args([
            "decompose",
            mtx.to_str().unwrap(),
            "128",
            amd.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decompose failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("exact reconstruction"));
    // multiply
    let out = cli()
        .args([
            "multiply",
            mtx.to_str().unwrap(),
            amd.to_str().unwrap(),
            "8",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multiply failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("verified"), "multiply output: {text}");
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&amd);
}

#[test]
fn stream_workflow() {
    let mtx = tmp("stream.mtx");
    let out = cli()
        .args(["generate", "osm", "800", mtx.to_str().unwrap(), "5"])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Drive a mutation stream with a tight budget so at least one
    // compacting refresh happens, and every answer verifies exactly.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "40",
            "10",
            "0.02",
            "9",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("verified 10/10 answers exactly"),
        "stream output: {text}"
    );
    assert!(text.contains("corrected runs"), "stream output: {text}");
    assert!(text.contains("refreshes = "), "stream output: {text}");
    assert!(
        text.contains("incremental = ") && text.contains("cold fallbacks = "),
        "stream output must report the incremental/fallback split: {text}"
    );
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn stream_rejects_bad_budget() {
    let mtx = tmp("stream-bad.mtx");
    cli()
        .args(["generate", "osm", "400", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    let out = cli()
        .args(["stream", mtx.to_str().unwrap(), "32", "8", "4", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad budget-frac"));
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn serve_catalog_warm_restart_decomposes_zero() {
    let mtx = tmp("warm.mtx");
    let cat = tmp("warm-cat");
    let _ = std::fs::remove_dir_all(&cat);
    cli()
        .args(["generate", "osm", "1200", mtx.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    // Cold run: one decomposition, written through to the catalog.
    let out = cli()
        .args([
            "serve",
            mtx.to_str().unwrap(),
            "64",
            "8",
            "8",
            "1",
            "--catalog",
            cat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "cold serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("decompositions = 1") && text.contains("spills = 1"),
        "cold run writes through: {text}"
    );
    // Warm restart on identical traffic: reloads > 0, zero cold
    // decomposes.
    let out = cli()
        .args([
            "serve",
            mtx.to_str().unwrap(),
            "64",
            "8",
            "8",
            "1",
            "--catalog",
            cat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("decompositions = 0"),
        "warm restart must not decompose: {text}"
    );
    assert!(
        text.contains("disk loads = 1"),
        "warm restart must reload from the catalog: {text}"
    );
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_dir_all(&cat);
}

#[test]
fn catalog_ls_gc_restore_workflow() {
    let mtx = tmp("catwf.mtx");
    let cat = tmp("catwf-cat");
    let restored = tmp("catwf-restored.amd");
    let _ = std::fs::remove_dir_all(&cat);
    cli()
        .args(["generate", "osm", "900", mtx.to_str().unwrap(), "5"])
        .output()
        .unwrap();
    // A tight-budget stream produces refreshes → a multi-version chain.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "60",
            "6",
            "0.02",
            "9",
            "--catalog",
            cat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream --catalog failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ls shows a chain whose later versions carry parent lineage.
    let out = cli()
        .args(["catalog", "ls", cat.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let versions: usize = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(2))
        .and_then(|v| v.parse().ok())
        .expect("ls header");
    assert!(versions >= 2, "stream must have chained versions: {text}");
    assert!(text.contains(" v1 "), "chain has a version 1: {text}");
    // Restore version 0 from the head of the chain and multiply with
    // it. Record lines are the indented ones; the totals/io summary
    // follows them.
    let head_fp = text
        .lines()
        .rfind(|l| l.starts_with("  "))
        .and_then(|l| l.split_whitespace().next())
        .expect("ls last record");
    let out = cli()
        .args([
            "catalog",
            "restore",
            cat.to_str().unwrap(),
            head_fp,
            "0",
            restored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restore failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("restored"));
    let out = cli()
        .args([
            "multiply",
            mtx.to_str().unwrap(),
            restored.to_str().unwrap(),
            "4",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multiply on restored decomposition failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified"));
    // GC down to the newest version per lineage.
    let out = cli()
        .args(["catalog", "gc", cat.to_str().unwrap(), "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("removed"), "gc reports its sweep: {text}");
    let out = cli()
        .args(["catalog", "ls", cat.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains(": 1 version(s)"),
        "one survivor after gc: {text}"
    );
    // Unknown fingerprints fail cleanly.
    let out = cli()
        .args([
            "catalog",
            "restore",
            cat.to_str().unwrap(),
            "00000000000000000000000000000042",
            "0",
            restored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&restored);
    let _ = std::fs::remove_dir_all(&cat);
}

#[test]
fn serve_writes_metrics_json_snapshot() {
    let mtx = tmp("metrics.mtx");
    let json = tmp("metrics.json");
    cli()
        .args(["generate", "osm", "1000", mtx.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "serve",
            mtx.to_str().unwrap(),
            "64",
            "8",
            "8",
            "1",
            "--metrics-json",
            json.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "serve --metrics-json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("metrics"),
        "serve reports the metrics file"
    );
    // The snapshot parses with the workspace's own JSON reader and
    // carries the schema marker, the serving counters, and the latency
    // histograms with consistent counts.
    let body = std::fs::read_to_string(&json).expect("metrics file written");
    let v = arrow_matrix::obs::parse_json(&body).expect("metrics JSON parses");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("amd-metrics/1")
    );
    let counter = |name: &str| v.get(name).and_then(|c| c.as_u64()).unwrap_or(0);
    let hist_count = |name: &str| {
        v.get(name)
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_u64())
            .unwrap_or(0)
    };
    assert!(
        counter("engine.runs") > 0,
        "serve recorded its runs: {body}"
    );
    // 8 queries through the unbatched baseline + the same 8 batched.
    assert_eq!(counter("engine.queries"), 16, "16 queries served: {body}");
    assert_eq!(
        counter("cache.decompositions"),
        1,
        "one cold decompose: {body}"
    );
    assert_eq!(
        hist_count("multiply.seconds"),
        counter("engine.runs"),
        "one latency sample per run: {body}"
    );
    assert_eq!(
        hist_count("decompose.seconds"),
        counter("cache.decompositions"),
        "one decompose duration per decomposition: {body}"
    );
    // The stats subcommand renders the same file.
    let out = cli()
        .args(["stats", json.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("engine.runs"), "stats output: {text}");
    assert!(text.contains("multiply.seconds"), "stats output: {text}");
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&json);
}

#[test]
fn usage_on_no_args() {
    let out = cli().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("stream"),
        "usage must document the streaming subcommand"
    );
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = cli()
        .args(["generate", "nonsense", "100", "/tmp/x.mtx"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = cli()
        .args(["info", "/nonexistent/path.mtx"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn mismatched_decomposition_rejected() {
    let mtx_a = tmp("a.mtx");
    let mtx_b = tmp("b.mtx");
    let amd_a = tmp("a.amd");
    cli()
        .args(["generate", "osm", "1000", mtx_a.to_str().unwrap()])
        .output()
        .unwrap();
    cli()
        .args(["generate", "osm", "1500", mtx_b.to_str().unwrap()])
        .output()
        .unwrap();
    cli()
        .args([
            "decompose",
            mtx_a.to_str().unwrap(),
            "64",
            amd_a.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = cli()
        .args(["multiply", mtx_b.to_str().unwrap(), amd_a.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("decomposition is for"));
    for f in [mtx_a, mtx_b, amd_a] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn stream_multi_tenant_async_workflow() {
    let mtx = tmp("stream-hub.mtx");
    cli()
        .args(["generate", "osm", "600", mtx.to_str().unwrap(), "7"])
        .output()
        .unwrap();
    // 4 tenants behind one hub, refreshes on the background worker.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "30",
            "8",
            "0.02",
            "7",
            "--tenants",
            "4",
            "--async-refresh",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multi-tenant stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("4 tenant(s)"), "must report tenancy: {text}");
    assert!(
        text.contains("refresh = background"),
        "must report async refresh mode: {text}"
    );
    assert!(
        text.contains("verified 32/32 answers exactly"),
        "8 queries × 4 tenants, all exact: {text}"
    );
    assert!(text.contains("refreshes = "), "stream output: {text}");
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn report_renders_the_calibration_table() {
    let mtx = tmp("report.mtx");
    let json = tmp("report.json");
    cli()
        .args(["generate", "mawi", "512", mtx.to_str().unwrap(), "7"])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "serve",
            mtx.to_str().unwrap(),
            "64",
            "48",
            "8",
            "2",
            "--metrics-json",
            json.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args(["report", json.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("rank-agreement"), "table header: {text}");
    assert!(
        text.lines().any(|l| l.starts_with("arrow")),
        "per-algorithm row for the bound Arrow algorithm: {text}"
    );
    // The cost model's volume prediction is derived from the planned
    // distribution, so on an uncorrected serve run the accounted
    // volumes must confirm the planner's ranking in every check.
    assert!(
        text.contains("held up in 100.0% of checked runs"),
        "rank agreement on a static serve workload: {text}"
    );
    // Calibration columns: measured wall per run and the effective
    // measured per-byte cost, with the model-β comparison line.
    assert!(text.contains("wall ms/run"), "calibration header: {text}");
    assert!(
        text.contains("effective β"),
        "measured-β calibration line: {text}"
    );
    assert!(
        text.contains("predicted/accounted = 1.000"),
        "volume prediction calibrated: {text}"
    );
    // A metrics file without attribution data fails cleanly.
    let empty = tmp("report-empty.json");
    std::fs::write(&empty, "{\"schema\": \"amd-metrics/1\"}").unwrap();
    let out = cli()
        .args(["report", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no cost-attribution data"));
    for f in [mtx, json, empty] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn timeseries_log_feeds_the_top_dashboard() {
    let mtx = tmp("ts.mtx");
    let ts = tmp("ts.jsonl");
    cli()
        .args(["generate", "osm", "800", mtx.to_str().unwrap(), "5"])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "40",
            "10",
            "0.02",
            "9",
            "--tenants",
            "2",
            "--timeseries",
            ts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream --timeseries failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Every line parses with the workspace's own reader; sequence
    // numbers are contiguous and the final cumulative counters match
    // the whole run.
    let body = std::fs::read_to_string(&ts).expect("timeseries written");
    let points: Vec<_> = body
        .lines()
        .map(|l| arrow_matrix::obs::parse_ts_line(l).expect("ts line parses"))
        .collect();
    assert!(points.len() >= 2, "at least startup + exit samples: {body}");
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.seq, i as u64, "contiguous sequence");
    }
    let last = points.last().unwrap();
    assert_eq!(last.counter("hub.queries"), 20, "10 queries × 2 tenants");
    assert!(last.counter("hub.updates") > 0);
    assert!(
        last.counter("engine.plan.accounted_bytes") > 0,
        "attribution flowed into the time series: {body}"
    );
    // `top` renders the same log.
    let out = cli().args(["top", ts.to_str().unwrap()]).output().unwrap();
    assert!(
        out.status.success(),
        "top failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("queries/s"), "rates line: {text}");
    assert!(text.contains("splice"), "splice ratio line: {text}");
    assert!(text.contains("hit rate"), "cache line: {text}");
    assert!(
        text.contains("tenant 1") && text.contains("tenant 2"),
        "per-tenant rows: {text}"
    );
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&ts);
}

#[test]
fn stream_exports_a_complete_chrome_trace() {
    let mtx = tmp("trace.mtx");
    let trace = tmp("trace.json");
    cli()
        .args(["generate", "osm", "800", mtx.to_str().unwrap(), "5"])
        .output()
        .unwrap();
    // Tight budget forces refreshes; the background worker path is the
    // one that traces a decompose child span under each refresh root.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "40",
            "10",
            "0.02",
            "9",
            "--async-refresh",
            "--trace-json",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream --trace-json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&trace).expect("trace written");
    let doc = arrow_matrix::obs::parse_json(&body).expect("Chrome trace JSON parses");
    let events = match doc.get("traceEvents") {
        Some(arrow_matrix::obs::JsonValue::Arr(items)) => items,
        other => panic!("traceEvents missing: {other:?}"),
    };
    let arg_u64 = |e: &arrow_matrix::obs::JsonValue, k: &str| {
        e.get("args")
            .and_then(|a| a.get(k))
            .and_then(|v| v.as_u64())
    };
    fn name_of(e: &arrow_matrix::obs::JsonValue) -> &str {
        e.get("name").and_then(|n| n.as_str()).unwrap_or_default()
    }
    // No event references a parent outside the export.
    let ids: Vec<u64> = events.iter().filter_map(|e| arg_u64(e, "id")).collect();
    for e in events {
        if let Some(parent) = arg_u64(e, "parent") {
            assert!(
                parent == 0 || ids.contains(&parent),
                "dangling parent {parent} in {body}"
            );
        }
    }
    // The refresh span tree exports complete: a "refresh" complete
    // span with a "decompose" child nested under it.
    let refresh = events
        .iter()
        .find(|e| name_of(e) == "refresh")
        .expect("a refresh span was traced");
    assert_eq!(refresh.get("ph").and_then(|p| p.as_str()), Some("X"));
    let refresh_id = arg_u64(refresh, "id").unwrap();
    assert!(
        events
            .iter()
            .any(|e| name_of(e) == "decompose" && arg_u64(e, "parent") == Some(refresh_id)),
        "decompose nests under refresh: {body}"
    );
    // Multiply events carry the attribution detail.
    assert!(
        events.iter().any(|e| {
            name_of(e) == "multiply"
                && e.get("args")
                    .and_then(|a| a.get("detail"))
                    .and_then(|d| d.as_str())
                    .is_some_and(|d| d.contains("accounted_rank_bytes="))
        }),
        "multiply events carry accounted volumes: {body}"
    );
    // Lane metadata names the process.
    assert!(
        events.iter().any(|e| name_of(e) == "process_name"),
        "process metadata present: {body}"
    );
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn decompose_and_multiply_write_metrics_snapshots() {
    let mtx = tmp("oneshot.mtx");
    let amd = tmp("oneshot.amd");
    let djson = tmp("oneshot-d.json");
    let mjson = tmp("oneshot-m.json");
    cli()
        .args(["generate", "osm", "600", mtx.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "decompose",
            mtx.to_str().unwrap(),
            "64",
            amd.to_str().unwrap(),
            "42",
            "--metrics-json",
            djson.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decompose --metrics-json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&djson).expect("decompose metrics written");
    let v = arrow_matrix::obs::parse_json(&body).expect("metrics JSON parses");
    assert_eq!(
        v.get("decompose.seconds")
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_u64()),
        Some(1),
        "one decompose duration sample: {body}"
    );
    assert_eq!(
        v.get("matrix.n").and_then(|n| n.as_u64()),
        Some(600),
        "matrix size recorded: {body}"
    );
    let out = cli()
        .args([
            "multiply",
            mtx.to_str().unwrap(),
            amd.to_str().unwrap(),
            "8",
            "2",
            "--metrics-json",
            mjson.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multiply --metrics-json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("cost    : predicted"),
        "multiply prints the predicted-vs-accounted line"
    );
    // The one-shot attribution feeds the same calibration table.
    let out = cli()
        .args(["report", mjson.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "report on multiply metrics failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.lines().any(|l| l.starts_with("arrow")),
        "arrow calibration row: {text}"
    );
    assert!(
        text.contains("n/a"),
        "single-algorithm run has no ranking to check: {text}"
    );
    for f in [mtx, amd, djson, mjson] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn stream_rejects_bad_tenant_flag() {
    let mtx = tmp("stream-bad-tenants.mtx");
    cli()
        .args(["generate", "osm", "400", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "8",
            "4",
            "0.05",
            "42",
            "--tenants",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tenants"));
    // Unknown flags fail cleanly too.
    let out = cli()
        .args(["stream", mtx.to_str().unwrap(), "32", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    let _ = std::fs::remove_file(&mtx);
}
