//! Integration tests for the `arrow-matrix-cli` binary: the full
//! generate → info → decompose → multiply artifact workflow.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arrow-matrix-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amd-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_workflow() {
    let mtx = tmp("w.mtx");
    let amd = tmp("w.amd");
    // generate
    let out = cli()
        .args(["generate", "osm", "2000", mtx.to_str().unwrap(), "3"])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OSM-Europe"));
    // info
    let out = cli()
        .args(["info", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("2000 x 2000"), "info output: {text}");
    assert!(text.contains("bandwidth lower bound"));
    // decompose
    let out = cli()
        .args([
            "decompose",
            mtx.to_str().unwrap(),
            "128",
            amd.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decompose failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("exact reconstruction"));
    // multiply
    let out = cli()
        .args([
            "multiply",
            mtx.to_str().unwrap(),
            amd.to_str().unwrap(),
            "8",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multiply failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("verified"), "multiply output: {text}");
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&amd);
}

#[test]
fn stream_workflow() {
    let mtx = tmp("stream.mtx");
    let out = cli()
        .args(["generate", "osm", "800", mtx.to_str().unwrap(), "5"])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Drive a mutation stream with a tight budget so at least one
    // compacting refresh happens, and every answer verifies exactly.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "40",
            "10",
            "0.02",
            "9",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("verified 10/10 answers exactly"),
        "stream output: {text}"
    );
    assert!(text.contains("corrected runs"), "stream output: {text}");
    assert!(text.contains("refreshes = "), "stream output: {text}");
    assert!(
        text.contains("incremental = ") && text.contains("cold fallbacks = "),
        "stream output must report the incremental/fallback split: {text}"
    );
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn stream_rejects_bad_budget() {
    let mtx = tmp("stream-bad.mtx");
    cli()
        .args(["generate", "osm", "400", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    let out = cli()
        .args(["stream", mtx.to_str().unwrap(), "32", "8", "4", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad budget-frac"));
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn serve_catalog_warm_restart_decomposes_zero() {
    let mtx = tmp("warm.mtx");
    let cat = tmp("warm-cat");
    let _ = std::fs::remove_dir_all(&cat);
    cli()
        .args(["generate", "osm", "1200", mtx.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    // Cold run: one decomposition, written through to the catalog.
    let out = cli()
        .args([
            "serve",
            mtx.to_str().unwrap(),
            "64",
            "8",
            "8",
            "1",
            "--catalog",
            cat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "cold serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("decompositions = 1") && text.contains("spills = 1"),
        "cold run writes through: {text}"
    );
    // Warm restart on identical traffic: reloads > 0, zero cold
    // decomposes.
    let out = cli()
        .args([
            "serve",
            mtx.to_str().unwrap(),
            "64",
            "8",
            "8",
            "1",
            "--catalog",
            cat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("decompositions = 0"),
        "warm restart must not decompose: {text}"
    );
    assert!(
        text.contains("disk loads = 1"),
        "warm restart must reload from the catalog: {text}"
    );
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_dir_all(&cat);
}

#[test]
fn catalog_ls_gc_restore_workflow() {
    let mtx = tmp("catwf.mtx");
    let cat = tmp("catwf-cat");
    let restored = tmp("catwf-restored.amd");
    let _ = std::fs::remove_dir_all(&cat);
    cli()
        .args(["generate", "osm", "900", mtx.to_str().unwrap(), "5"])
        .output()
        .unwrap();
    // A tight-budget stream produces refreshes → a multi-version chain.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "60",
            "6",
            "0.02",
            "9",
            "--catalog",
            cat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream --catalog failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ls shows a chain whose later versions carry parent lineage.
    let out = cli()
        .args(["catalog", "ls", cat.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let versions: usize = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(2))
        .and_then(|v| v.parse().ok())
        .expect("ls header");
    assert!(versions >= 2, "stream must have chained versions: {text}");
    assert!(text.contains(" v1 "), "chain has a version 1: {text}");
    // Restore version 0 from the head of the chain and multiply with
    // it. Record lines are the indented ones; the totals/io summary
    // follows them.
    let head_fp = text
        .lines()
        .rfind(|l| l.starts_with("  "))
        .and_then(|l| l.split_whitespace().next())
        .expect("ls last record");
    let out = cli()
        .args([
            "catalog",
            "restore",
            cat.to_str().unwrap(),
            head_fp,
            "0",
            restored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restore failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("restored"));
    let out = cli()
        .args([
            "multiply",
            mtx.to_str().unwrap(),
            restored.to_str().unwrap(),
            "4",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multiply on restored decomposition failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified"));
    // GC down to the newest version per lineage.
    let out = cli()
        .args(["catalog", "gc", cat.to_str().unwrap(), "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("removed"), "gc reports its sweep: {text}");
    let out = cli()
        .args(["catalog", "ls", cat.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains(": 1 version(s)"),
        "one survivor after gc: {text}"
    );
    // Unknown fingerprints fail cleanly.
    let out = cli()
        .args([
            "catalog",
            "restore",
            cat.to_str().unwrap(),
            "00000000000000000000000000000042",
            "0",
            restored.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&restored);
    let _ = std::fs::remove_dir_all(&cat);
}

#[test]
fn serve_writes_metrics_json_snapshot() {
    let mtx = tmp("metrics.mtx");
    let json = tmp("metrics.json");
    cli()
        .args(["generate", "osm", "1000", mtx.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "serve",
            mtx.to_str().unwrap(),
            "64",
            "8",
            "8",
            "1",
            "--metrics-json",
            json.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "serve --metrics-json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("metrics"),
        "serve reports the metrics file"
    );
    // The snapshot parses with the workspace's own JSON reader and
    // carries the schema marker, the serving counters, and the latency
    // histograms with consistent counts.
    let body = std::fs::read_to_string(&json).expect("metrics file written");
    let v = arrow_matrix::obs::parse_json(&body).expect("metrics JSON parses");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("amd-metrics/1")
    );
    let counter = |name: &str| v.get(name).and_then(|c| c.as_u64()).unwrap_or(0);
    let hist_count = |name: &str| {
        v.get(name)
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_u64())
            .unwrap_or(0)
    };
    assert!(
        counter("engine.runs") > 0,
        "serve recorded its runs: {body}"
    );
    // 8 queries through the unbatched baseline + the same 8 batched.
    assert_eq!(counter("engine.queries"), 16, "16 queries served: {body}");
    assert_eq!(
        counter("cache.decompositions"),
        1,
        "one cold decompose: {body}"
    );
    assert_eq!(
        hist_count("multiply.seconds"),
        counter("engine.runs"),
        "one latency sample per run: {body}"
    );
    assert_eq!(
        hist_count("decompose.seconds"),
        counter("cache.decompositions"),
        "one decompose duration per decomposition: {body}"
    );
    // The stats subcommand renders the same file.
    let out = cli()
        .args(["stats", json.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("engine.runs"), "stats output: {text}");
    assert!(text.contains("multiply.seconds"), "stats output: {text}");
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&json);
}

#[test]
fn usage_on_no_args() {
    let out = cli().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("stream"),
        "usage must document the streaming subcommand"
    );
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = cli()
        .args(["generate", "nonsense", "100", "/tmp/x.mtx"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = cli()
        .args(["info", "/nonexistent/path.mtx"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn mismatched_decomposition_rejected() {
    let mtx_a = tmp("a.mtx");
    let mtx_b = tmp("b.mtx");
    let amd_a = tmp("a.amd");
    cli()
        .args(["generate", "osm", "1000", mtx_a.to_str().unwrap()])
        .output()
        .unwrap();
    cli()
        .args(["generate", "osm", "1500", mtx_b.to_str().unwrap()])
        .output()
        .unwrap();
    cli()
        .args([
            "decompose",
            mtx_a.to_str().unwrap(),
            "64",
            amd_a.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = cli()
        .args(["multiply", mtx_b.to_str().unwrap(), amd_a.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("decomposition is for"));
    for f in [mtx_a, mtx_b, amd_a] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn stream_multi_tenant_async_workflow() {
    let mtx = tmp("stream-hub.mtx");
    cli()
        .args(["generate", "osm", "600", mtx.to_str().unwrap(), "7"])
        .output()
        .unwrap();
    // 4 tenants behind one hub, refreshes on the background worker.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "30",
            "8",
            "0.02",
            "7",
            "--tenants",
            "4",
            "--async-refresh",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multi-tenant stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("4 tenant(s)"), "must report tenancy: {text}");
    assert!(
        text.contains("refresh = background"),
        "must report async refresh mode: {text}"
    );
    assert!(
        text.contains("verified 32/32 answers exactly"),
        "8 queries × 4 tenants, all exact: {text}"
    );
    assert!(text.contains("refreshes = "), "stream output: {text}");
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn stream_rejects_bad_tenant_flag() {
    let mtx = tmp("stream-bad-tenants.mtx");
    cli()
        .args(["generate", "osm", "400", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "8",
            "4",
            "0.05",
            "42",
            "--tenants",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tenants"));
    // Unknown flags fail cleanly too.
    let out = cli()
        .args(["stream", mtx.to_str().unwrap(), "32", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    let _ = std::fs::remove_file(&mtx);
}
