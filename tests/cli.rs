//! Integration tests for the `arrow-matrix-cli` binary: the full
//! generate → info → decompose → multiply artifact workflow.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arrow-matrix-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amd-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_workflow() {
    let mtx = tmp("w.mtx");
    let amd = tmp("w.amd");
    // generate
    let out = cli()
        .args(["generate", "osm", "2000", mtx.to_str().unwrap(), "3"])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OSM-Europe"));
    // info
    let out = cli()
        .args(["info", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("2000 x 2000"), "info output: {text}");
    assert!(text.contains("bandwidth lower bound"));
    // decompose
    let out = cli()
        .args([
            "decompose",
            mtx.to_str().unwrap(),
            "128",
            amd.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "decompose failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("exact reconstruction"));
    // multiply
    let out = cli()
        .args([
            "multiply",
            mtx.to_str().unwrap(),
            amd.to_str().unwrap(),
            "8",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multiply failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("verified"), "multiply output: {text}");
    let _ = std::fs::remove_file(&mtx);
    let _ = std::fs::remove_file(&amd);
}

#[test]
fn stream_workflow() {
    let mtx = tmp("stream.mtx");
    let out = cli()
        .args(["generate", "osm", "800", mtx.to_str().unwrap(), "5"])
        .output()
        .expect("spawn cli");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Drive a mutation stream with a tight budget so at least one
    // compacting refresh happens, and every answer verifies exactly.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "40",
            "10",
            "0.02",
            "9",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("verified 10/10 answers exactly"),
        "stream output: {text}"
    );
    assert!(text.contains("corrected runs"), "stream output: {text}");
    assert!(text.contains("refreshes = "), "stream output: {text}");
    assert!(
        text.contains("incremental = ") && text.contains("cold fallbacks = "),
        "stream output must report the incremental/fallback split: {text}"
    );
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn stream_rejects_bad_budget() {
    let mtx = tmp("stream-bad.mtx");
    cli()
        .args(["generate", "osm", "400", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    let out = cli()
        .args(["stream", mtx.to_str().unwrap(), "32", "8", "4", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad budget-frac"));
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn usage_on_no_args() {
    let out = cli().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("stream"),
        "usage must document the streaming subcommand"
    );
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = cli()
        .args(["generate", "nonsense", "100", "/tmp/x.mtx"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = cli()
        .args(["info", "/nonexistent/path.mtx"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn mismatched_decomposition_rejected() {
    let mtx_a = tmp("a.mtx");
    let mtx_b = tmp("b.mtx");
    let amd_a = tmp("a.amd");
    cli()
        .args(["generate", "osm", "1000", mtx_a.to_str().unwrap()])
        .output()
        .unwrap();
    cli()
        .args(["generate", "osm", "1500", mtx_b.to_str().unwrap()])
        .output()
        .unwrap();
    cli()
        .args([
            "decompose",
            mtx_a.to_str().unwrap(),
            "64",
            amd_a.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = cli()
        .args(["multiply", mtx_b.to_str().unwrap(), amd_a.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("decomposition is for"));
    for f in [mtx_a, mtx_b, amd_a] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn stream_multi_tenant_async_workflow() {
    let mtx = tmp("stream-hub.mtx");
    cli()
        .args(["generate", "osm", "600", mtx.to_str().unwrap(), "7"])
        .output()
        .unwrap();
    // 4 tenants behind one hub, refreshes on the background worker.
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "30",
            "8",
            "0.02",
            "7",
            "--tenants",
            "4",
            "--async-refresh",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "multi-tenant stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("4 tenant(s)"), "must report tenancy: {text}");
    assert!(
        text.contains("refresh = background"),
        "must report async refresh mode: {text}"
    );
    assert!(
        text.contains("verified 32/32 answers exactly"),
        "8 queries × 4 tenants, all exact: {text}"
    );
    assert!(text.contains("refreshes = "), "stream output: {text}");
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn stream_rejects_bad_tenant_flag() {
    let mtx = tmp("stream-bad-tenants.mtx");
    cli()
        .args(["generate", "osm", "400", mtx.to_str().unwrap()])
        .output()
        .unwrap();
    let out = cli()
        .args([
            "stream",
            mtx.to_str().unwrap(),
            "32",
            "8",
            "4",
            "0.05",
            "42",
            "--tenants",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tenants"));
    // Unknown flags fail cleanly too.
    let out = cli()
        .args(["stream", mtx.to_str().unwrap(), "32", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    let _ = std::fs::remove_file(&mtx);
}
