//! Acceptance tests of the streaming-update subsystem: the corrected
//! multiply bit-matches a cold decompose-and-multiply of the merged
//! matrix, a warm engine absorbs a mutation stream with zero cold
//! decomposes until the staleness budget trips, and random update
//! streams stay exact end to end.
//!
//! All streams here are **integer-valued** (adjacency weights, deltas,
//! and operands), so every floating-point reduction is exact and "equal"
//! means bit-for-bit — the strongest form of the subsystem's
//! fixed-reduction-order guarantee.

use arrow_matrix::engine::{Engine, EngineConfig, MultiplyQuery};
use arrow_matrix::graph::generators::datasets::DatasetKind;
use arrow_matrix::sparse::{ops, CooMatrix, CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::reference::iterated_spmm;
use arrow_matrix::stream::{
    DynamicConfig, DynamicMatrix, StalenessBudget, StreamingConfig, StreamingEngine, Update,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dataset(n: u32) -> CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    DatasetKind::WebBase.generate(n, &mut rng).to_adjacency()
}

/// An integer-valued structural delta: chords added across the matrix,
/// one existing entry (if any) re-weighted.
fn chord_delta(a: &CsrMatrix<f64>, chords: u32) -> CsrMatrix<f64> {
    let n = a.rows();
    let mut coo = CooMatrix::new(n, n);
    for i in 0..chords {
        let u = (7 * i + 1) % n;
        let v = (u + n / 2 + i) % n;
        if u != v && a.get(u, v) == 0.0 {
            coo.push_sym(u, v, 1.0 + (i % 3) as f64).unwrap();
        }
    }
    coo.to_csr()
}

#[test]
fn corrected_multiply_bit_matches_cold_decompose_and_multiply() {
    // Acceptance criterion 1: a warm engine serving A₀ + ΔA through the
    // corrected path must answer bit-identically to a *cold* engine that
    // decomposes and multiplies the merged matrix from scratch.
    let n = 700;
    let a = dataset(n);
    let delta = chord_delta(&a, 24);
    assert!(delta.nnz() > 0);
    let merged = ops::apply_delta(&a, &delta).unwrap();
    let config = EngineConfig {
        arrow_width: 64,
        target_ranks: 8,
        ..EngineConfig::default()
    };

    // Warm path: base registered, delta overlaid, no re-decompose.
    let mut warm = Engine::new(config.clone()).unwrap();
    let warm_id = warm.register(&a).unwrap();
    warm.set_delta(warm_id, delta).unwrap();

    // Cold path: merged matrix decomposed and planned from scratch.
    let mut cold = Engine::new(config).unwrap();
    let cold_id = cold.register(&merged).unwrap();

    for (q, iters) in [(0u32, 1u32), (1, 2), (2, 3)] {
        let x: Vec<f64> = (0..n).map(|r| (((q + 5 * r) % 13) as f64) - 6.0).collect();
        let got = warm
            .run_single(MultiplyQuery {
                matrix: warm_id,
                x: x.clone(),
                iters,
                sigma: None,
            })
            .unwrap();
        let want = cold
            .run_single(MultiplyQuery {
                matrix: cold_id,
                x,
                iters,
                sigma: None,
            })
            .unwrap();
        assert_eq!(
            got.y, want.y,
            "corrected path must bit-match the cold rebuild at iters = {iters}"
        );
    }
    assert_eq!(warm.cache_stats().decompositions, 1, "warm stayed warm");
    assert!(warm.stats().corrected_runs >= 3);
    assert_eq!(cold.stats().corrected_runs, 0);
}

#[test]
fn warm_engine_absorbs_stream_with_zero_cold_decomposes_until_budget_trips() {
    // Acceptance criterion 2, asserted via cache/refresh counters: below
    // the staleness budget every query is served warm (decompositions
    // stays at the single cold registration, refreshes at 0); the first
    // update that crosses the budget triggers exactly one compacting
    // refresh (one more decomposition).
    let n = 600;
    let a = dataset(n);
    let cap = 12;
    let mut s = StreamingEngine::new(
        a.clone(),
        StreamingConfig {
            engine: EngineConfig {
                arrow_width: 64,
                target_ranks: 8,
                ..EngineConfig::default()
            },
            budget: StalenessBudget::nnz_cap(cap),
            auto_refresh: true,
        },
    )
    .unwrap();
    assert_eq!(s.cache_stats().decompositions, 1, "one cold decompose");

    let mut truth = a;
    let mut tripped = false;
    for i in 0..40u32 {
        let u = (11 * i + 3) % n;
        let v = (u + n / 3 + i) % n;
        if u == v || truth.get(u, v) != 0.0 {
            continue;
        }
        let w = 1.0 + (i % 2) as f64;
        let mut patch = CooMatrix::new(n, n);
        patch.push_sym(u, v, w).unwrap();
        truth = ops::apply_delta(&truth, &patch.to_csr()).unwrap();
        for part in (Update::Add {
            row: u,
            col: v,
            delta: w,
        })
        .sym_pair()
        {
            tripped |= s.update(part).unwrap();
        }
        // Serve (and verify) between mutations.
        let x: Vec<f64> = (0..n).map(|r| (((i + r) % 7) as f64) - 3.0).collect();
        let resp = s.run_single(x.clone(), 2, None).unwrap();
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = iterated_spmm(&truth, &xm, 2).unwrap();
        assert_eq!(resp.y, want.data(), "answer after mutation {i}");

        if !tripped {
            assert_eq!(
                s.cache_stats().decompositions,
                1,
                "below budget the warm engine must not decompose (mutation {i})"
            );
            assert_eq!(s.engine_stats().refreshes, 0);
            assert!(s.delta_nnz() <= cap);
        } else {
            break;
        }
    }
    assert!(tripped, "the budget must trip within the stream");
    assert_eq!(s.engine_stats().refreshes, 1, "exactly one refresh");
    assert_eq!(
        s.cache_stats().decompositions,
        1,
        "the refresh decomposes outside the cache (incrementally where \
         the delta allows) and admits the result — no second cold run"
    );
    assert_eq!(
        s.cache_stats().admitted,
        1,
        "refresh admits exactly one decomposition"
    );
    assert_eq!(s.version(), 1);
    // The budget can trip on the first half of a symmetric pair, leaving
    // the mirror entry pending — but never more than that.
    assert!(
        s.delta_nnz() <= 1,
        "compaction must drain the delta (left {})",
        s.delta_nnz()
    );
    assert_eq!(
        ops::apply_delta(s.base(), &s.delta().to_csr()).unwrap(),
        truth,
        "base + pending delta equals the mutated truth"
    );

    // The stream keeps serving correctly after the refresh, warm again.
    let x: Vec<f64> = (0..n).map(|r| ((r % 5) as f64) - 2.0).collect();
    let resp = s.run_single(x.clone(), 1, None).unwrap();
    let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
    assert_eq!(resp.y, iterated_spmm(&truth, &xm, 1).unwrap().data());
    assert_eq!(s.cache_stats().decompositions, 1, "still no cold decompose");
}

#[test]
fn planner_reranks_after_refresh() {
    // The refresh re-plans against the merged structure: the plan report
    // of the new binding is freshly computed (4 candidates, sorted), and
    // the bound algorithm is the cheapest of them.
    let n = 500;
    let a = dataset(n);
    let mut s = StreamingEngine::new(
        a,
        StreamingConfig {
            engine: EngineConfig {
                arrow_width: 64,
                target_ranks: 8,
                ..EngineConfig::default()
            },
            budget: StalenessBudget::nnz_cap(4),
            auto_refresh: true,
        },
    )
    .unwrap();
    let report_before: Vec<(String, f64)> = s
        .plan_report()
        .iter()
        .map(|p| (p.name.clone(), p.seconds))
        .collect();
    let mut done = false;
    for i in 0..20u32 {
        for part in (Update::Add {
            row: i,
            col: (i + n / 2) % n,
            delta: 2.0,
        })
        .sym_pair()
        {
            done |= s.update(part).unwrap();
        }
        if done {
            break;
        }
    }
    assert!(done);
    let report_after: Vec<(String, f64)> = s
        .plan_report()
        .iter()
        .map(|p| (p.name.clone(), p.seconds))
        .collect();
    assert_eq!(report_after.len(), 4);
    assert!(
        report_after.windows(2).all(|w| w[0].1 <= w[1].1),
        "re-ranked report must be sorted: {report_after:?}"
    );
    assert_ne!(
        report_before, report_after,
        "the merged structure must re-score the candidates"
    );
    assert_eq!(s.chosen_algorithm(), report_after[0].0);
}

/// A compact encoding of a random update: target coordinates (reduced
/// modulo n), an integer payload, and which variant to apply.
type RawUpdate = (u32, u32, i8, bool);

fn updates_strategy() -> impl Strategy<Value = (u32, Vec<RawUpdate>)> {
    (16u32..48).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, -3i8..4, any::<bool>()), 1..40),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_update_streams_stay_exact((n, raw) in updates_strategy()) {
        // Property: for any random update stream, the corrected path
        // equals SpMM over the rebuilt matrix — exactly (integer data).
        let a: CsrMatrix<f64> =
            arrow_matrix::graph::generators::basic::cycle(n).to_adjacency();
        let mut dm = DynamicMatrix::new(a, DynamicConfig {
            decompose: arrow_matrix::core::DecomposeConfig::with_width(8),
            ..DynamicConfig::default()
        }).unwrap();
        for &(r, c, mag, is_set) in &raw {
            let update = if is_set {
                Update::Set { row: r, col: c, value: mag as f64 }
            } else {
                Update::Add { row: r, col: c, delta: mag as f64 }
            };
            dm.apply(update).unwrap();
        }
        let merged = dm.merged().unwrap();
        let x = DenseMatrix::from_fn(n, 2, |r, c| (((r + 2 * c) % 9) as f64) - 4.0);
        for iters in [1u32, 2] {
            let got = dm.multiply(&x, iters, None).unwrap();
            let want = iterated_spmm(&merged, &x, iters).unwrap();
            prop_assert_eq!(&got, &want, "iters = {}", iters);
        }
        // And with a non-linear σ in the loop.
        let relu: fn(f64) -> f64 = |v| v.max(0.0);
        let got = dm.multiply(&x, 2, Some(relu)).unwrap();
        let mut want = x.clone();
        for _ in 0..2 {
            want = arrow_matrix::sparse::spmm::spmm(&merged, &want).unwrap();
            want.map_inplace(relu);
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn delta_compaction_is_idempotent((n, raw) in updates_strategy()) {
        // Property: refreshing compacts the delta exactly once — the
        // compacted base reproduces the merged matrix, and a second
        // refresh (no pending delta) changes nothing.
        let a: CsrMatrix<f64> =
            arrow_matrix::graph::generators::basic::cycle(n).to_adjacency();
        let mut dm = DynamicMatrix::new(a, DynamicConfig {
            decompose: arrow_matrix::core::DecomposeConfig::with_width(8),
            ..DynamicConfig::default()
        }).unwrap();
        for &(r, c, mag, is_set) in &raw {
            let update = if is_set {
                Update::Set { row: r, col: c, value: mag as f64 }
            } else {
                Update::Add { row: r, col: c, delta: mag as f64 }
            };
            dm.apply(update).unwrap();
        }
        let merged = dm.merged().unwrap();
        let had_delta = dm.delta_nnz() > 0;
        prop_assert_eq!(dm.refresh().unwrap(), had_delta);
        prop_assert_eq!(dm.base(), &merged);
        prop_assert_eq!(dm.delta_nnz(), 0);
        prop_assert_eq!(dm.decomposition().validate(&merged).unwrap(), 0.0);
        let version = dm.version();
        let fingerprint = dm.fingerprint();
        // Second compaction: structurally a no-op.
        prop_assert!(!dm.refresh().unwrap());
        prop_assert_eq!(dm.version(), version);
        prop_assert_eq!(dm.fingerprint(), fingerprint);
        prop_assert_eq!(dm.base(), &merged);
    }
}

// ---------------------------------------------------------------------------
// Multi-tenant hub: double-buffered refresh, fairness, exact swaps.
// ---------------------------------------------------------------------------

use arrow_matrix::stream::{HubConfig, StreamHub, TenantId};
use std::time::Duration;

fn hub_engine_config() -> EngineConfig {
    EngineConfig {
        arrow_width: 64,
        target_ranks: 8,
        ..EngineConfig::default()
    }
}

/// Mirrors `update` (a symmetric integer add) onto a truth matrix.
fn apply_sym(
    hub: &mut StreamHub,
    tenant: TenantId,
    truth: &mut CsrMatrix<f64>,
    u: u32,
    v: u32,
    w: f64,
) {
    let n = truth.rows();
    let mut patch = CooMatrix::new(n, n);
    patch.push_sym(u, v, w).unwrap();
    *truth = ops::apply_delta(truth, &patch.to_csr()).unwrap();
    for part in (Update::Add {
        row: u,
        col: v,
        delta: w,
    })
    .sym_pair()
    {
        hub.update(tenant, part).unwrap();
    }
}

#[test]
fn four_tenant_hub_keeps_serving_during_background_refresh() {
    // Acceptance criterion: a 4-tenant mutation stream keeps serving
    // queries while one tenant's refresh decomposes in the background
    // (injected slow-decompose hook), every answer bit-matches a cold
    // decompose-and-multiply reference, and the swap commits afterwards.
    let n = 400;
    let a = dataset(n);
    let delay = Duration::from_millis(600);
    let mut hub = StreamHub::new(HubConfig {
        engine: hub_engine_config(),
        budget: StalenessBudget::nnz_cap(6),
        decompose_delay: Some(delay),
        ..HubConfig::default()
    })
    .unwrap();
    // All four tenants share content: bindings are isolated by salt,
    // the expensive decompose is shared by the cache.
    let tenants: Vec<TenantId> = (0..4).map(|_| hub.admit(a.clone()).unwrap()).collect();
    assert_eq!(hub.cache_stats().decompositions, 1);
    let mut truth: Vec<CsrMatrix<f64>> = vec![a.clone(); 4];

    // Trip tenant 0's budget: the rebuild launches and goes to sleep.
    for i in 0..4u32 {
        let (u, v) = ((13 * i + 1) % n, (13 * i + 1 + n / 2) % n);
        apply_sym(&mut hub, tenants[0], &mut truth[0], u, v, 1.0);
    }
    assert!(hub.refresh_pending(tenants[0]).unwrap());
    assert!(hub.tenant_stats(tenants[0]).unwrap().refreshing);

    // Serve a mutation + query burst on every tenant while the worker
    // sleeps: nothing may block on the decompose.
    let burst_start = arrow_matrix::obs::Stopwatch::start();
    let mut expected: Vec<(usize, Vec<f64>)> = Vec::new();
    for round in 0..2u32 {
        for (j, &t) in tenants.iter().enumerate() {
            if j > 0 {
                // Light mutations on the other tenants (below budget).
                let (u, v) = ((7 * round + j as u32) % n, (11 + round + j as u32) % n);
                apply_sym(&mut hub, t, &mut truth[j], u, v, 2.0);
            }
            let x: Vec<f64> = (0..n)
                .map(|r| (((round + j as u32 + 2 * r) % 9) as f64) - 4.0)
                .collect();
            hub.submit(t, x.clone(), 2, None).unwrap();
            expected.push((j, x));
        }
    }
    let responses = hub.flush().unwrap();
    let served = Duration::from_nanos(burst_start.elapsed_nanos());
    assert!(
        served < delay,
        "the burst must not block on the background decompose \
         (took {served:?} against a {delay:?} rebuild)"
    );
    assert_eq!(responses.len(), expected.len());
    for (resp, (j, x)) in responses.iter().zip(&expected) {
        let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
        let want = iterated_spmm(&truth[*j], &xm, 2).unwrap();
        assert_eq!(
            resp.y,
            want.data(),
            "tenant {j} answer during rebuild must bit-match the reference"
        );
    }

    // Commit the swap and verify the spliced state keeps serving exactly.
    hub.wait_refreshes().unwrap();
    assert_eq!(hub.version(tenants[0]).unwrap(), 1);
    assert_eq!(hub.stats().refreshes_completed, 1);
    assert_eq!(
        hub.cache_stats().decompositions,
        1,
        "the rebuild ran on the worker, not through the cache"
    );
    assert_eq!(hub.cache_stats().admitted, 1);
    for (j, &t) in tenants.iter().enumerate() {
        let x: Vec<f64> = (0..n).map(|r| ((r % 7) as f64) - 3.0).collect();
        let resp = hub.run_single(t, x.clone(), 1, None).unwrap();
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = iterated_spmm(&truth[j], &xm, 1).unwrap();
        assert_eq!(resp.y, want.data(), "tenant {j} answer after the swap");
    }
}

#[test]
fn mutations_during_rebuild_are_spliced_and_exact_after_swap() {
    // Acceptance criterion for the async swap: updates applied *during*
    // a background rebuild — including a second budget trip — are
    // answered exactly after the swap, and the re-trip is honoured at
    // commit instead of double-triggering mid-flight.
    let n = 300;
    let a = dataset(n);
    let mut hub = StreamHub::new(HubConfig {
        engine: hub_engine_config(),
        budget: StalenessBudget::nnz_cap(6),
        decompose_delay: Some(Duration::from_millis(150)),
        ..HubConfig::default()
    })
    .unwrap();
    let t = hub.admit(a.clone()).unwrap();
    let mut truth = a;

    // First trip: rebuild launches with the captured snapshot.
    for i in 0..4u32 {
        let (u, v) = ((5 * i + 2) % n, (5 * i + 2 + n / 3) % n);
        apply_sym(&mut hub, t, &mut truth, u, v, 1.0);
    }
    assert!(hub.tenant_stats(t).unwrap().refreshing);
    // Mid-rebuild: trip the budget again.
    for i in 0..5u32 {
        let (u, v) = ((9 * i + 4) % n, (9 * i + 4 + n / 4) % n);
        apply_sym(&mut hub, t, &mut truth, u, v, 3.0);
    }
    assert!(
        hub.tenant_stats(t).unwrap().suppressed_triggers >= 1,
        "the in-flight refresh must guard the second trip"
    );
    assert_eq!(hub.stats().refreshes_started, 1, "no double-launch");
    // Serving mid-rebuild covers base + captured + live layers.
    let x: Vec<f64> = (0..n).map(|r| (((3 * r) % 11) as f64) - 5.0).collect();
    let resp = hub.run_single(t, x.clone(), 2, None).unwrap();
    let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
    assert_eq!(resp.y, iterated_spmm(&truth, &xm, 2).unwrap().data());

    // Both swaps commit (the second launched at the first's commit).
    hub.wait_refreshes().unwrap();
    assert_eq!(hub.stats().refreshes_completed, 2);
    assert_eq!(hub.version(t).unwrap(), 2);
    assert_eq!(hub.delta_nnz(t).unwrap(), 0, "everything compacted");
    assert_eq!(
        ops::apply_delta(hub.base(t).unwrap(), &hub.delta(t).unwrap().to_csr()).unwrap(),
        truth,
        "the compacted base equals the mutated truth"
    );
    let x: Vec<f64> = (0..n).map(|r| ((r % 5) as f64) - 2.0).collect();
    let resp = hub.run_single(t, x.clone(), 2, None).unwrap();
    let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
    assert_eq!(resp.y, iterated_spmm(&truth, &xm, 2).unwrap().data());
}

#[test]
fn shared_refresh_budget_is_starvation_free() {
    // Tenancy fairness: under a shared refresh budget (one rebuild at a
    // time), a tenant that keeps re-tripping cannot starve the others —
    // every tenant with a tripped budget is granted within K = #tenants
    // slots, and per-tenant counters sum to the hub counters.
    let n = 64;
    let ring: CsrMatrix<f64> = arrow_matrix::graph::generators::basic::cycle(n).to_adjacency();
    let mut hub = StreamHub::new(HubConfig {
        engine: EngineConfig {
            arrow_width: 16,
            target_ranks: 4,
            ..EngineConfig::default()
        },
        budget: StalenessBudget::nnz_cap(2),
        // Keep the first rebuild in flight while everything else queues,
        // so the grant order is deterministic.
        decompose_delay: Some(Duration::from_millis(100)),
        ..HubConfig::default()
    })
    .unwrap();
    let tenants: Vec<TenantId> = (0..6).map(|_| hub.admit(ring.clone()).unwrap()).collect();
    // Tenant 0 trips first (grant slot 1, rebuild in flight)…
    for i in 0..3u32 {
        hub.update(
            tenants[0],
            Update::Add {
                row: i,
                col: (i + 17) % n,
                delta: 1.0,
            },
        )
        .unwrap();
    }
    // …then re-trips immediately (guarded mid-flight, requeued at
    // commit), while every other tenant trips once.
    for i in 0..3u32 {
        hub.update(
            tenants[0],
            Update::Add {
                row: i + 30,
                col: (i + 47) % n,
                delta: 1.0,
            },
        )
        .unwrap();
    }
    for &t in &tenants[1..] {
        for i in 0..3u32 {
            hub.update(
                t,
                Update::Add {
                    row: i + 5,
                    col: (i + 23) % n,
                    delta: 1.0,
                },
            )
            .unwrap();
        }
    }
    while hub.wait_next_refresh().unwrap().is_some() {}
    // Tenant 0 refreshed twice: slots 1 and 7 (behind every waiter).
    let t0 = hub.tenant_stats(tenants[0]).unwrap();
    assert_eq!(t0.refreshes, 2);
    assert_eq!(t0.last_granted_slot, 7, "re-trip goes to the back");
    assert!(t0.suppressed_triggers >= 1);
    for (j, &t) in tenants.iter().enumerate().skip(1) {
        let s = hub.tenant_stats(t).unwrap();
        assert_eq!(s.refreshes, 1, "tenant {j} must not starve");
        assert!(
            (2..=6).contains(&s.last_granted_slot),
            "tenant {j} granted at slot {} — outside the K-slot bound",
            s.last_granted_slot
        );
    }
    // Per-tenant counters sum to hub counters.
    let hs = hub.stats().clone();
    let sum = |f: &dyn Fn(&arrow_matrix::stream::TenantStats) -> u64| -> u64 {
        tenants
            .iter()
            .map(|&t| f(&hub.tenant_stats(t).unwrap()))
            .sum()
    };
    assert_eq!(sum(&|s| s.updates), hs.updates);
    assert_eq!(sum(&|s| s.queries), hs.queries);
    assert_eq!(sum(&|s| s.refreshes), hs.refreshes_completed);
    assert_eq!(sum(&|s| s.suppressed_triggers), hs.suppressed_triggers);
    assert_eq!(sum(&|s| s.early_rebinds), hs.early_rebinds);
    assert_eq!(
        sum(&|s| s.splice.incremental_refreshes),
        hs.splice.incremental_refreshes
    );
    assert_eq!(
        sum(&|s| s.splice.fallback_refreshes),
        hs.splice.fallback_refreshes
    );
    assert_eq!(
        sum(&|s| s.splice.reused_vertices),
        hs.splice.reused_vertices
    );
    assert_eq!(
        sum(&|s| s.splice.refresh_total_vertices),
        hs.splice.refresh_total_vertices
    );
    assert_eq!(
        hs.splice.incremental_refreshes + hs.splice.fallback_refreshes,
        hs.refreshes_completed,
        "every completed refresh is incremental or a counted fallback"
    );
    assert_eq!(hs.refreshes_completed, 7);
}

#[test]
fn per_tenant_registry_sums_to_hub_registry() {
    // The same invariant as above, one layer down: in a metrics
    // snapshot the `hub.tenant.<id>.*` counters must sum to their
    // `hub.*` totals under multi-tenant async-refresh traffic — the
    // per-tenant handles and the hub handles are incremented at the
    // same sites, never independently.
    let n = 64;
    let ring: CsrMatrix<f64> = arrow_matrix::graph::generators::basic::cycle(n).to_adjacency();
    let mut hub = StreamHub::with_telemetry(
        HubConfig {
            engine: EngineConfig {
                arrow_width: 16,
                target_ranks: 4,
                ..EngineConfig::default()
            },
            budget: StalenessBudget::nnz_cap(2),
            ..HubConfig::default()
        },
        arrow_matrix::obs::Telemetry::new(),
    )
    .unwrap();
    let tenants: Vec<TenantId> = (0..4).map(|_| hub.admit(ring.clone()).unwrap()).collect();
    // Every tenant trips its budget twice and serves a few queries
    // while rebuilds run on the background worker.
    for round in 0..2u32 {
        for (j, &t) in tenants.iter().enumerate() {
            for i in 0..3u32 {
                hub.update(
                    t,
                    Update::Add {
                        row: (11 * round + 3 * j as u32 + i) % n,
                        col: (11 * round + 3 * j as u32 + i + 17) % n,
                        delta: 1.0,
                    },
                )
                .unwrap();
            }
            let x: Vec<f64> = (0..n).map(|r| ((r + j as u32) % 5) as f64).collect();
            hub.run_single(t, x, 1, None).unwrap();
        }
        hub.wait_refreshes().unwrap();
    }
    assert!(hub.stats().refreshes_completed >= tenants.len() as u64);

    let snap = hub.telemetry().registry.snapshot();
    let tenant_sum = |field: &str| -> u64 {
        tenants
            .iter()
            .map(|t| {
                snap.counter(&format!("hub.tenant.{}.{field}", t.0))
                    .unwrap_or(0)
            })
            .sum()
    };
    let hub_total = |name: &str| snap.counter(name).expect("hub counter registered");
    assert_eq!(tenant_sum("updates"), hub_total("hub.updates"));
    assert_eq!(tenant_sum("queries"), hub_total("hub.queries"));
    assert_eq!(
        tenant_sum("refreshes"),
        hub_total("hub.refreshes_completed")
    );
    assert_eq!(
        tenant_sum("suppressed_triggers"),
        hub_total("hub.suppressed_triggers")
    );
    assert_eq!(tenant_sum("early_rebinds"), hub_total("hub.early_rebinds"));
    assert_eq!(
        tenant_sum("splice.incremental_refreshes"),
        hub_total("hub.splice.incremental_refreshes")
    );
    assert_eq!(
        tenant_sum("splice.fallback_refreshes"),
        hub_total("hub.splice.fallback_refreshes")
    );
    assert_eq!(
        tenant_sum("splice.reused_vertices"),
        hub_total("hub.splice.reused_vertices")
    );
    // The folded per-tenant views read the very same counters.
    for &t in &tenants {
        let s = hub.tenant_stats(t).unwrap();
        assert_eq!(
            snap.counter(&format!("hub.tenant.{}.updates", t.0)),
            Some(s.updates)
        );
        assert_eq!(
            snap.counter(&format!("hub.tenant.{}.refreshes", t.0)),
            Some(s.refreshes)
        );
    }
}

// ---------------------------------------------------------------------------
// Incremental re-decomposition through the serving stack.
// ---------------------------------------------------------------------------

use arrow_matrix::stream::{AdaptiveBudget, IncrementalPolicy};

/// A ring with short chords: localized structure, several levels, and
/// predictable small affected regions for window-confined deltas.
fn banded(n: u32) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for v in 0..n {
        coo.push_sym(v, (v + 1) % n, 1.0).unwrap();
        coo.push_sym(v, (v + 4) % n, 1.0).unwrap();
    }
    coo.to_csr()
}

#[test]
fn hub_refresh_is_incremental_and_exact_including_mid_rebuild_mutations() {
    // The background worker splices instead of rebuilding: after the
    // swap the tenant's counters show an incremental refresh with a high
    // reused-vertex fraction, and every answer — before, during (i.e.
    // against base + captured + live delta layers), and after the swap —
    // bit-matches the mutated truth.
    let n = 600;
    let a = banded(n);
    let mut hub = StreamHub::new(HubConfig {
        engine: EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            ..EngineConfig::default()
        },
        budget: StalenessBudget::nnz_cap(6),
        decompose_delay: Some(Duration::from_millis(120)),
        ..HubConfig::default()
    })
    .unwrap();
    let t = hub.admit(a.clone()).unwrap();
    let mut truth = a;

    // Localized mutations inside one window trip the budget.
    for i in 0..4u32 {
        apply_sym(&mut hub, t, &mut truth, 100 + 3 * i, 102 + 3 * i, 1.0);
    }
    assert!(hub.tenant_stats(t).unwrap().refreshing, "rebuild in flight");
    // Mid-rebuild mutations land in the live delta (same window).
    for i in 0..2u32 {
        apply_sym(&mut hub, t, &mut truth, 120 + 3 * i, 122 + 3 * i, 2.0);
    }
    // Serving mid-rebuild is exact.
    let x: Vec<f64> = (0..n).map(|r| (((2 * r) % 9) as f64) - 4.0).collect();
    let resp = hub.run_single(t, x.clone(), 2, None).unwrap();
    let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
    assert_eq!(
        resp.y,
        iterated_spmm(&truth, &xm, 2).unwrap().data(),
        "mid-rebuild answer"
    );

    hub.wait_refreshes().unwrap();
    let stats = hub.tenant_stats(t).unwrap().clone();
    assert!(
        stats.splice.incremental_refreshes >= 1,
        "localized delta must splice: {stats:?}"
    );
    assert_eq!(
        stats.splice.incremental_refreshes + stats.splice.fallback_refreshes,
        stats.refreshes
    );
    assert!(
        stats.splice.reused_vertex_fraction() > 0.5,
        "window-confined deltas must reuse most of the arrangement \
         (got {:.3})",
        stats.splice.reused_vertex_fraction()
    );
    // Post-swap serving is exact on the spliced binding.
    let x: Vec<f64> = (0..n).map(|r| ((r % 7) as f64) - 3.0).collect();
    let resp = hub.run_single(t, x.clone(), 2, None).unwrap();
    let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
    assert_eq!(resp.y, iterated_spmm(&truth, &xm, 2).unwrap().data());
}

#[test]
fn oversized_region_falls_back_cold_counted_and_exact() {
    // Acceptance criterion: affected region above the policy threshold →
    // automatic cold fallback, `fallback_refreshes` increments, results
    // stay exact.
    let n = 200;
    let a = banded(n);
    let mut hub = StreamHub::new(HubConfig {
        engine: EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            // Any non-empty region exceeds a zero fraction: every
            // refresh attempts the incremental path and falls back.
            incremental: IncrementalPolicy {
                max_affected_fraction: 0.0,
                ..IncrementalPolicy::default()
            },
            ..EngineConfig::default()
        },
        budget: StalenessBudget::nnz_cap(3),
        async_refresh: false,
        ..HubConfig::default()
    })
    .unwrap();
    let t = hub.admit(a.clone()).unwrap();
    let mut truth = a;
    for i in 0..2u32 {
        apply_sym(&mut hub, t, &mut truth, 10 + i, 40 + i, 1.0);
    }
    let stats = hub.tenant_stats(t).unwrap();
    assert_eq!(stats.refreshes, 1);
    assert_eq!(
        stats.splice.fallback_refreshes, 1,
        "fallback must be counted"
    );
    assert_eq!(stats.splice.incremental_refreshes, 0);
    assert_eq!(hub.stats().splice.fallback_refreshes, 1);
    assert_eq!(stats.splice.reused_vertex_fraction(), 0.0);
    let x: Vec<f64> = (0..n).map(|r| ((r % 5) as f64) - 2.0).collect();
    let resp = hub.run_single(t, x.clone(), 2, None).unwrap();
    let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
    assert_eq!(resp.y, iterated_spmm(&truth, &xm, 2).unwrap().data());
}

#[test]
fn adaptive_budget_retunes_from_measured_refresh_latency() {
    // With an AdaptiveBudget policy, a completed refresh re-derives the
    // tenant's max_delta_nnz from measured refresh seconds vs the
    // predicted per-entry correction overhead — replacing the admitted
    // fixed cap.
    let n = 400;
    let policy = AdaptiveBudget::default();
    let mut hub = StreamHub::new(HubConfig {
        engine: EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            ..EngineConfig::default()
        },
        budget: StalenessBudget::nnz_cap(4),
        adaptive: Some(policy),
        async_refresh: false,
        ..HubConfig::default()
    })
    .unwrap();
    let t = hub.admit(banded(n)).unwrap();
    assert_eq!(hub.budget(t).unwrap().max_delta_nnz, 4, "admitted cap");
    for i in 0..5u32 {
        hub.update(
            t,
            Update::Add {
                row: 50 + 2 * i,
                col: 53 + 2 * i,
                delta: 1.0,
            },
        )
        .unwrap();
    }
    let stats = hub.tenant_stats(t).unwrap().clone();
    assert_eq!(stats.refreshes, 1);
    let tuned = hub.budget(t).unwrap().max_delta_nnz;
    assert!(
        (policy.min_nnz..=policy.max_nnz).contains(&tuned),
        "derived budget {tuned} outside the clamp"
    );
    assert_eq!(
        stats.adaptive_budget_nnz, tuned as u64,
        "stats must mirror the derived budget"
    );
    // The other budget limits survive the retune untouched.
    assert!(hub.budget(t).unwrap().max_delta_fraction.is_infinite());
}

// ---------------------------------------------------------------------------
// Persistence catalog + tenant lifecycle: warm restarts, eviction GC.
// ---------------------------------------------------------------------------

fn catalog_payloads(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "amd"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn warm_restart_from_catalog_bit_matches_cold_with_zero_decomposes() {
    // Acceptance criterion: a hub restarted over a populated catalog
    // serves identical answers on identical traffic with
    // `decompositions == 0`.
    let dir = std::env::temp_dir().join(format!("amd-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 500;
    let config = || HubConfig {
        engine: EngineConfig {
            spill_dir: Some(dir.clone()),
            ..hub_engine_config()
        },
        budget: StalenessBudget::nnz_cap(8),
        async_refresh: false,
        ..HubConfig::default()
    };
    let queries: Vec<Vec<f64>> = (0..4)
        .map(|q| (0..n).map(|r| (((q * 5 + r) % 9) as f64) - 4.0).collect())
        .collect();
    let drive = |hub: &mut StreamHub| -> Vec<Vec<f64>> {
        let t = hub.admit(dataset(n)).unwrap();
        let mut answers = Vec::new();
        for (i, x) in queries.iter().enumerate() {
            // Mutate between queries; the tight budget forces refreshes
            // that extend the tenant's catalog chain.
            let mut truth_unused = hub.base(t).unwrap().clone();
            apply_sym(hub, t, &mut truth_unused, i as u32, (i as u32) + n / 2, 1.0);
            answers.push(hub.run_single(t, x.clone(), 2, None).unwrap().y);
        }
        answers
    };
    // Cold: every decomposition computed, all written through.
    let cold_answers;
    {
        let mut hub = StreamHub::new(config()).unwrap();
        cold_answers = drive(&mut hub);
        assert!(hub.cache_stats().decompositions >= 1);
        assert!(!hub.catalog().unwrap().is_empty());
    }
    // Warm: a fresh hub over the same catalog replays identical
    // traffic — every decomposition reloads, zero are computed.
    let mut hub = StreamHub::new(config()).unwrap();
    let warm_answers = drive(&mut hub);
    assert_eq!(
        hub.cache_stats().decompositions,
        0,
        "warm restart must not run LA-Decompose"
    );
    assert!(hub.cache_stats().disk_loads >= 1);
    assert_eq!(warm_answers, cold_answers, "bit-identical serving");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evict_leaves_zero_orphaned_spill_files() {
    // Acceptance criterion: `StreamHub::evict` leaves zero orphaned
    // spill files — every payload in the catalog dir belongs to a
    // surviving tenant's chain, and evicting everyone empties it.
    let dir = std::env::temp_dir().join(format!("amd-evict-orphans-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 400;
    let mut hub = StreamHub::new(HubConfig {
        engine: EngineConfig {
            spill_dir: Some(dir.clone()),
            ..hub_engine_config()
        },
        budget: StalenessBudget::nnz_cap(4),
        async_refresh: false,
        ..HubConfig::default()
    })
    .unwrap();
    let a = hub.admit(dataset(n)).unwrap();
    let b = hub.admit(banded(n)).unwrap();
    // Grow both tenants' chains past their roots.
    let mut ta = hub.base(a).unwrap().clone();
    let mut tb = hub.base(b).unwrap().clone();
    for i in 0..6u32 {
        apply_sym(&mut hub, a, &mut ta, i, i + n / 3, 1.0);
        apply_sym(&mut hub, b, &mut tb, i, i + n / 4, 2.0);
    }
    hub.wait_refreshes().unwrap();
    let before = catalog_payloads(&dir);
    assert!(before >= 2, "both tenants persisted ({before} payloads)");
    assert_eq!(
        before,
        hub.catalog().unwrap().len(),
        "payloads and records agree before the evict"
    );
    // Evict tenant a: exactly its chain's payloads disappear.
    hub.evict(a).unwrap();
    let after = catalog_payloads(&dir);
    assert!(after < before, "evict must delete a's chain");
    assert_eq!(
        after,
        hub.catalog().unwrap().len(),
        "no payload without a record"
    );
    // Tenant b still serves — warm — and exactly.
    let x: Vec<f64> = (0..n).map(|r| ((r % 7) as f64) - 3.0).collect();
    let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
    let got = hub.run_single(b, x, 2, None).unwrap();
    assert_eq!(got.y, iterated_spmm(&tb, &xm, 2).unwrap().data());
    // Evicting the last tenant empties the catalog entirely.
    hub.evict(b).unwrap();
    assert_eq!(catalog_payloads(&dir), 0, "zero orphaned spill files");
    assert_eq!(hub.catalog().unwrap().len(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evict_then_readmit_is_exact() {
    // Acceptance criterion: evicting a tenant and re-admitting the same
    // content serves bit-identical answers to an untouched tenant.
    let n = 400;
    let a = dataset(n);
    let mut hub = StreamHub::new(HubConfig {
        engine: hub_engine_config(),
        budget: StalenessBudget::nnz_cap(6),
        async_refresh: false,
        ..HubConfig::default()
    })
    .unwrap();
    let t1 = hub.admit(a.clone()).unwrap();
    let mut truth = a.clone();
    for i in 0..8u32 {
        apply_sym(&mut hub, t1, &mut truth, i, i + n / 2, 1.0);
    }
    let x: Vec<f64> = (0..n).map(|r| (((3 * r) % 11) as f64) - 5.0).collect();
    let xm = DenseMatrix::from_vec(n, 1, x.clone()).unwrap();
    let before = hub.run_single(t1, x.clone(), 2, None).unwrap().y;
    assert_eq!(before, iterated_spmm(&truth, &xm, 2).unwrap().data());
    // Evict, re-admit the *mutated* content, replay the query.
    let final_stats = hub.evict(t1).unwrap();
    assert_eq!(final_stats.updates, 16, "8 symmetric pairs");
    let t2 = hub.admit(truth.clone()).unwrap();
    assert_ne!(t1, t2, "tenant ids are never recycled");
    let after = hub.run_single(t2, x, 2, None).unwrap().y;
    assert_eq!(after, before, "evict-then-readmit must be exact");
}
