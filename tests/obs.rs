//! Acceptance tests of the unified telemetry layer: every latency
//! histogram's sample count equals its paired `*Stats` counter (one
//! timing site feeds both), one background refresh leaves a complete
//! span tree in the tracer ring, and a registry snapshot survives the
//! JSON round trip through the hand-rolled writer/parser.

use arrow_matrix::engine::EngineConfig;
use arrow_matrix::obs::{parse_json, Telemetry};
use arrow_matrix::sparse::CsrMatrix;
use arrow_matrix::stream::{HubConfig, StalenessBudget, StreamHub, TenantId, Update};

fn ring(n: u32) -> CsrMatrix<f64> {
    arrow_matrix::graph::generators::basic::cycle(n).to_adjacency()
}

fn small_hub_config(async_refresh: bool) -> HubConfig {
    HubConfig {
        engine: EngineConfig {
            arrow_width: 16,
            target_ranks: 4,
            ..EngineConfig::default()
        },
        budget: StalenessBudget::nnz_cap(2),
        async_refresh,
        ..HubConfig::default()
    }
}

/// Trips the tenant's nnz-cap budget with `rounds` × 3 chord inserts.
fn trip(hub: &mut StreamHub, t: TenantId, n: u32, rounds: u32) {
    for r in 0..rounds {
        for i in 0..3u32 {
            hub.update(
                t,
                Update::Add {
                    row: (7 * r + i) % n,
                    col: (7 * r + i + 13) % n,
                    delta: 1.0,
                },
            )
            .unwrap();
        }
        hub.wait_refreshes().unwrap();
    }
}

#[test]
fn histogram_counts_match_stats_counters() {
    // One stopwatch feeds each histogram *and* the matching folded
    // counter, so their counts must agree exactly — a histogram that
    // drifts from its `*Stats` view means a timing site was duplicated
    // or dropped.
    let n = 64;
    let mut hub = StreamHub::with_telemetry(small_hub_config(false), Telemetry::new()).unwrap();
    let t = hub.admit(ring(n)).unwrap();
    trip(&mut hub, t, n, 3);
    for q in 0..5u32 {
        let x: Vec<f64> = (0..n).map(|r| ((r + q) % 7) as f64).collect();
        hub.run_single(t, x, 2, None).unwrap();
    }

    let engine = hub.engine_stats();
    let cache = hub.cache_stats();
    let hs = hub.stats();
    assert!(engine.runs > 0 && hs.refreshes_completed >= 3);

    let snap = hub.telemetry().registry.snapshot();
    let hist = |name: &str| snap.histogram(name).expect("histogram registered").count;
    // Engine: every run records its wall time and its batch size.
    assert_eq!(hist("multiply.seconds"), engine.runs);
    assert_eq!(hist("engine.batch_size"), engine.runs);
    // Engine refresh path: one latency sample per rebind.
    assert_eq!(hist("refresh.seconds"), engine.refreshes);
    // Cache: one decompose duration per cold decomposition.
    assert_eq!(hist("decompose.seconds"), cache.decompositions);
    // Hub: one sample per phase per committed refresh.
    assert_eq!(hist("refresh.decompose.seconds"), hs.refreshes_completed);
    assert_eq!(hist("refresh.extract.seconds"), hs.refreshes_completed);
    assert_eq!(hist("refresh.splice.seconds"), hs.refreshes_completed);
    // The folded views and the raw registry counters are the same data.
    assert_eq!(snap.counter("engine.runs"), Some(engine.runs));
    assert_eq!(
        snap.counter("cache.decompositions"),
        Some(cache.decompositions)
    );
    assert_eq!(
        snap.counter("hub.refreshes_completed"),
        Some(hs.refreshes_completed)
    );
}

#[test]
fn background_refresh_leaves_a_complete_span_tree() {
    // ISSUE acceptance: one refresh produces a complete traced span
    // tree retrievable from `StreamHub::telemetry()` — a root
    // `refresh` span with the `grant` event, the worker-closed
    // `decompose` child span, and the `splice`/`fallback` commit event
    // all linked to it by parent id.
    let n = 64;
    let mut hub = StreamHub::with_telemetry(small_hub_config(true), Telemetry::new()).unwrap();
    let t = hub.admit(ring(n)).unwrap();
    trip(&mut hub, t, n, 1);
    assert_eq!(hub.stats().refreshes_completed, 1);

    let events = hub.telemetry().tracer.snapshot();
    let root = events
        .iter()
        .find(|e| e.name == "refresh")
        .expect("refresh root span in the ring");
    assert_eq!(root.parent, 0, "refresh is a root span");
    assert_eq!(root.tenant, Some(t.0));
    assert!(root.duration_nanos > 0, "the span measured the lifecycle");
    assert!(
        root.detail.contains("committed"),
        "root closes at commit: {:?}",
        root.detail
    );

    let grant = events
        .iter()
        .find(|e| e.name == "grant")
        .expect("grant event");
    assert_eq!(grant.parent, root.id, "grant hangs off the refresh span");
    assert_eq!(grant.tenant, Some(t.0));
    assert_eq!(grant.duration_nanos, 0, "grant is instantaneous");

    let decompose = events
        .iter()
        .find(|e| e.name == "decompose")
        .expect("decompose child span (closed by the worker thread)");
    assert_eq!(decompose.parent, root.id);
    assert_eq!(decompose.tenant, Some(t.0));
    assert!(decompose.duration_nanos > 0, "decompose is a timed span");
    assert!(
        root.duration_nanos >= decompose.duration_nanos,
        "the root span covers its child"
    );

    let outcome = events
        .iter()
        .find(|e| e.name == "splice" || e.name == "fallback")
        .expect("commit records the splice/fallback outcome");
    assert_eq!(outcome.parent, root.id);
    assert!(outcome.detail.contains("affected="));

    assert_eq!(
        hub.telemetry().tracer.open_spans(),
        0,
        "no span leaks past the commit"
    );
}

#[test]
fn hub_queries_flow_into_the_attribution_counters() {
    // Cost attribution rides the same telemetry handle the hub was
    // built with: every answered query carries its run's `QueryCost`,
    // and the registry snapshot accumulates the per-algorithm
    // calibration counters that `arrow-matrix report` folds.
    let n = 64;
    let mut hub = StreamHub::with_telemetry(small_hub_config(false), Telemetry::new()).unwrap();
    let t = hub.admit(ring(n)).unwrap();
    let mut runs = 0u64;
    for q in 0..4u32 {
        let x: Vec<f64> = (0..n).map(|r| ((r + q) % 5) as f64).collect();
        let resp = hub.run_single(t, x, 2, None).unwrap();
        let cost = resp.cost.expect("telemetry enabled => cost attributed");
        assert_eq!(cost.iters, 2);
        assert!(!cost.corrected, "no delta overlay on a fresh tenant");
        runs += 1;
    }

    let snap = hub.telemetry().registry.snapshot();
    // The plan-wide and per-algorithm ledgers both saw every run.
    assert!(snap.counter("engine.plan.predicted_bytes").is_some());
    assert!(snap.counter("engine.plan.accounted_bytes").is_some());
    let per_algo: u64 = snap
        .metrics()
        .iter()
        .filter(|(name, _)| name.starts_with("engine.algo.") && name.ends_with(".runs"))
        .filter_map(|(name, _)| snap.counter(name))
        .sum();
    assert_eq!(per_algo, runs, "each run lands in exactly one algo bucket");
    let hist = snap
        .histogram("engine.rank_volume.bytes")
        .expect("per-rank volume histogram registered");
    assert!(hist.count > 0, "every run records its rank volumes");
}

#[test]
fn snapshot_json_round_trips_through_the_parser() {
    // The CLI `stats` subcommand and the metrics-smoke CI job read the
    // file back with the same parser; schema marker, counters, and
    // histogram summaries must survive the trip.
    let n = 64;
    let mut hub = StreamHub::with_telemetry(small_hub_config(false), Telemetry::new()).unwrap();
    let t = hub.admit(ring(n)).unwrap();
    trip(&mut hub, t, n, 2);

    let snap = hub.telemetry().registry.snapshot();
    let json = snap.to_json();
    let v = parse_json(&json).expect("snapshot JSON parses");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("amd-metrics/1")
    );
    assert_eq!(
        v.get("hub.refreshes_completed").and_then(|c| c.as_u64()),
        Some(hub.stats().refreshes_completed)
    );
    let hist = v.get("refresh.decompose.seconds").expect("histogram key");
    let count = hist.get("count").and_then(|c| c.as_u64()).unwrap();
    assert_eq!(count, hub.stats().refreshes_completed);
    assert!(hist.get("p50").is_some() && hist.get("p99").is_some());
}
