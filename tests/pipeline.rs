//! End-to-end integration tests: dataset generation → LA-Decompose →
//! distributed SpMM → verification, across all datasets and algorithms.

use arrow_matrix::core::stats::DecompositionStats;
use arrow_matrix::core::{la_decompose, DecomposeConfig, RandomForestLa, SeparatorLaStrategy};
use arrow_matrix::graph::generators::datasets::DatasetKind;
use arrow_matrix::partition::{hype_partition, HypeConfig};
use arrow_matrix::sparse::{CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::reference::iterated_spmm;
use arrow_matrix::spmm::verify::assert_matches_reference;
use arrow_matrix::spmm::{A15dSpmm, ArrowSpmm, DistSpmm, Hp1dSpmm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: u32 = 1200;

fn dataset(kind: DatasetKind) -> (arrow_matrix::graph::Graph, CsrMatrix<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11CE);
    let g = kind.generate(N, &mut rng);
    let a = g.to_adjacency();
    (g, a)
}

#[test]
fn every_dataset_decomposes_and_multiplies() {
    for kind in DatasetKind::ALL {
        let (_, a) = dataset(kind);
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(96),
            &mut RandomForestLa::new(1),
        )
        .unwrap_or_else(|e| panic!("{}: decomposition failed: {e}", kind.name()));
        assert_eq!(
            d.validate(&a).unwrap(),
            0.0,
            "{}: reconstruction mismatch",
            kind.name()
        );
        let s = DecompositionStats::of(&d);
        assert!(
            s.order <= 12,
            "{}: order {} unexpectedly deep",
            kind.name(),
            s.order
        );
        let alg = ArrowSpmm::new(&d).unwrap();
        assert_matches_reference(&alg, &a, 8, 2, 1e-7);
    }
}

#[test]
fn all_three_algorithms_agree() {
    let (g, a) = dataset(DatasetKind::WebBase);
    let x = DenseMatrix::from_fn(N, 6, |r, c| (((r + 3 * c) % 11) as f64) - 5.0);
    let expected = iterated_spmm(&a, &x, 2).unwrap();

    let d = la_decompose(
        &a,
        &DecomposeConfig::with_width(128),
        &mut RandomForestLa::new(2),
    )
    .unwrap();
    let arrow = ArrowSpmm::new(&d).unwrap().run(&x, 2).unwrap();
    assert!(arrow.y.max_abs_diff(&expected).unwrap() < 1e-7);

    let a15 = A15dSpmm::new(&a, 8, 2).unwrap().run(&x, 2).unwrap();
    assert!(a15.y.max_abs_diff(&expected).unwrap() < 1e-7);

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let part = hype_partition(&g, 6, &HypeConfig::default(), &mut rng);
    let hp = Hp1dSpmm::new(&a, &part).unwrap().run(&x, 2).unwrap();
    assert!(hp.y.max_abs_diff(&expected).unwrap() < 1e-7);

    // And the three distributed results agree with each other.
    assert!(arrow.y.max_abs_diff(&a15.y).unwrap() < 1e-7);
    assert!(a15.y.max_abs_diff(&hp.y).unwrap() < 1e-7);
}

#[test]
fn separator_strategy_works_end_to_end() {
    let (_, a) = dataset(DatasetKind::OsmEurope);
    let d = la_decompose(
        &a,
        &DecomposeConfig::with_width(128),
        &mut SeparatorLaStrategy,
    )
    .unwrap();
    assert_eq!(d.validate(&a).unwrap(), 0.0);
    let alg = ArrowSpmm::new(&d).unwrap();
    assert_matches_reference(&alg, &a, 4, 1, 1e-8);
}

#[test]
fn iterated_multiply_with_sigma_matches_direct() {
    let (_, a) = dataset(DatasetKind::GenBank);
    let d = la_decompose(
        &a,
        &DecomposeConfig::with_width(96),
        &mut RandomForestLa::new(4),
    )
    .unwrap();
    let x0 = DenseMatrix::from_fn(N, 4, |r, c| ((r * c) % 3) as f64 - 1.0);
    let relu = |v: f64| v.max(0.0);
    let via = d.iterate(&x0, 3, relu).unwrap();
    // Direct computation.
    let mut direct = x0.clone();
    for _ in 0..3 {
        let mut y = arrow_matrix::sparse::spmm::spmm(&a, &direct).unwrap();
        y.map_inplace(relu);
        direct = y;
    }
    assert!(via.max_abs_diff(&direct).unwrap() < 1e-9);
}

#[test]
fn distributed_sigma_matches_sequential_iterate() {
    // X ← σ(A·X) distributed must equal the sequential Eq. 1 path, for
    // every algorithm.
    let (g, a) = dataset(DatasetKind::WebBase);
    let d = la_decompose(
        &a,
        &DecomposeConfig::with_width(128),
        &mut RandomForestLa::new(6),
    )
    .unwrap();
    let x0 = DenseMatrix::from_fn(N, 5, |r, c| (((r * 7 + c) % 9) as f64) - 4.0);
    let relu: fn(f64) -> f64 = |v| v.max(0.0);
    let expected = d.iterate(&x0, 3, relu).unwrap();

    let arrow = ArrowSpmm::new(&d).unwrap();
    let ra = arrow.run_sigma(&x0, 3, Some(relu)).unwrap();
    assert!(
        ra.y.max_abs_diff(&expected).unwrap() < 1e-8,
        "arrow σ mismatch"
    );

    let a15 = A15dSpmm::new(&a, 8, 2).unwrap();
    let r15 = a15.run_sigma(&x0, 3, Some(relu)).unwrap();
    assert!(
        r15.y.max_abs_diff(&expected).unwrap() < 1e-8,
        "1.5D σ mismatch"
    );

    let a2d = arrow_matrix::spmm::A2dSpmm::new(&a, 9).unwrap();
    let r2d = a2d.run_sigma(&x0, 3, Some(relu)).unwrap();
    assert!(
        r2d.y.max_abs_diff(&expected).unwrap() < 1e-8,
        "2D σ mismatch"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let part = hype_partition(&g, 5, &HypeConfig::default(), &mut rng);
    let hp = Hp1dSpmm::new(&a, &part).unwrap();
    let rhp = hp.run_sigma(&x0, 3, Some(relu)).unwrap();
    assert!(
        rhp.y.max_abs_diff(&expected).unwrap() < 1e-8,
        "HP-1D σ mismatch"
    );
}

#[test]
fn decomposition_deterministic_across_runs() {
    let (_, a) = dataset(DatasetKind::Mawi);
    let d1 = la_decompose(
        &a,
        &DecomposeConfig::with_width(64),
        &mut RandomForestLa::new(9),
    )
    .unwrap();
    let d2 = la_decompose(
        &a,
        &DecomposeConfig::with_width(64),
        &mut RandomForestLa::new(9),
    )
    .unwrap();
    assert_eq!(d1, d2);
}

#[test]
fn engine_batched_queries_bit_match_per_query_runs() {
    // The serving engine coalesces compatible queries into one multi-RHS
    // run; answers must bit-match individual DistSpmm runs of the bound
    // algorithm on each single column.
    use arrow_matrix::engine::{Engine, EngineConfig, MultiplyQuery};
    let (_, a) = dataset(DatasetKind::WebBase);
    let mut engine = Engine::new(EngineConfig {
        arrow_width: 96,
        target_ranks: 8,
        ..EngineConfig::default()
    })
    .unwrap();
    let id = engine.register(&a).unwrap();

    let columns: Vec<Vec<f64>> = (0..5)
        .map(|q| (0..N).map(|r| (((q * 13 + r) % 9) as f64) - 4.0).collect())
        .collect();
    // Per-query runs through the same bound algorithm.
    let singles: Vec<Vec<f64>> = columns
        .iter()
        .map(|x| {
            engine
                .run_single(MultiplyQuery {
                    matrix: id,
                    x: x.clone(),
                    iters: 2,
                    sigma: None,
                })
                .unwrap()
                .y
        })
        .collect();
    // One batched flush.
    for x in &columns {
        engine
            .submit(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters: 2,
                sigma: None,
            })
            .unwrap();
    }
    let runs_before = engine.stats().runs;
    let responses = engine.flush().unwrap();
    assert_eq!(
        engine.stats().runs,
        runs_before + 1,
        "one run for the whole batch"
    );
    for (single, resp) in singles.iter().zip(&responses) {
        assert_eq!(
            single, &resp.y,
            "batched answer must bit-match the per-query run"
        );
        assert_eq!(resp.batch_size, columns.len());
    }
    // And both match the serial reference (within tolerance — different
    // algorithms round differently).
    for (x, resp) in columns.iter().zip(&responses) {
        let x = DenseMatrix::from_vec(N, 1, x.clone()).unwrap();
        let want = iterated_spmm(&a, &x, 2).unwrap();
        let got = DenseMatrix::from_vec(N, 1, resp.y.clone()).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-7);
    }
}

#[test]
fn engine_cache_hit_skips_redecomposition() {
    use arrow_matrix::engine::{Engine, EngineConfig, MultiplyQuery};
    let (_, a) = dataset(DatasetKind::GenBank);
    let spill = std::env::temp_dir().join(format!("amd-pipeline-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let config = EngineConfig {
        arrow_width: 96,
        target_ranks: 8,
        spill_dir: Some(spill.clone()),
        ..EngineConfig::default()
    };

    // Cold engine: exactly one LA-Decompose.
    let mut engine = Engine::new(config.clone()).unwrap();
    let id = engine.register(&a).unwrap();
    assert_eq!(engine.cache_stats().decompositions, 1);
    let x: Vec<f64> = (0..N).map(|r| (r % 5) as f64).collect();
    let first = engine
        .run_single(MultiplyQuery {
            matrix: id,
            x: x.clone(),
            iters: 1,
            sigma: None,
        })
        .unwrap();
    // Second query against the same matrix: zero further decompositions.
    engine
        .run_single(MultiplyQuery {
            matrix: id,
            x: x.clone(),
            iters: 1,
            sigma: None,
        })
        .unwrap();
    assert_eq!(
        engine.cache_stats().decompositions,
        1,
        "warm query must not decompose"
    );
    drop(engine);

    // Warm restart from the spill directory: zero decompositions, the
    // decomposition comes back from disk, and answers are identical.
    let mut engine = Engine::new(config).unwrap();
    let id2 = engine.register(&a).unwrap();
    assert_eq!(id2, id, "content fingerprint is stable across restarts");
    assert_eq!(
        engine.cache_stats().decompositions,
        0,
        "restart must reload, not decompose"
    );
    assert_eq!(engine.cache_stats().disk_loads, 1);
    let again = engine
        .run_single(MultiplyQuery {
            matrix: id2,
            x,
            iters: 1,
            sigma: None,
        })
        .unwrap();
    assert_eq!(
        first.y, again.y,
        "reloaded decomposition must serve identical answers"
    );
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn distributed_stats_are_deterministic() {
    let (_, a) = dataset(DatasetKind::GenBank);
    let d = la_decompose(
        &a,
        &DecomposeConfig::with_width(96),
        &mut RandomForestLa::new(5),
    )
    .unwrap();
    let alg = ArrowSpmm::new(&d).unwrap();
    let x = DenseMatrix::from_fn(N, 4, |r, _| r as f64);
    let r1 = alg.run(&x, 2).unwrap();
    let r2 = alg.run(&x, 2).unwrap();
    assert_eq!(r1.stats.max_volume(), r2.stats.max_volume());
    assert!((r1.stats.sim_time() - r2.stats.sim_time()).abs() < 1e-12);
    assert_eq!(r1.y, r2.y);
}
