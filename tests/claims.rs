//! Integration tests pinning the paper's *relative* claims at test scale:
//! who wins, and in which direction the trends move.

use arrow_matrix::core::stats::{direct_tiling_nonzero_blocks, DecompositionStats};
use arrow_matrix::core::{la_decompose, DecomposeConfig, RandomForestLa};
use arrow_matrix::graph::generators::{basic, datasets};
use arrow_matrix::sparse::{bandwidth, CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::{ArrowSpmm, DistSpmm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn mawi(n: u32) -> (arrow_matrix::graph::Graph, CsrMatrix<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let g = datasets::mawi_like(n, &mut rng);
    let a = g.to_adjacency();
    (g, a)
}

/// §1: "On 128 GPUs, our approach reduces the communication volume by 3-5
/// times compared to a 1.5D decomposition." At test scale, the reduction
/// must exceed 1.5× and grow with p.
#[test]
fn arrow_volume_beats_15d_on_mawi() {
    let n = 4096;
    let (_, a) = mawi(n);
    let k = 16;
    let x = DenseMatrix::from_fn(n, k, |r, _| r as f64);
    let mut ratios = Vec::new();
    for p in [8u32, 16] {
        let b = n / p;
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(1),
        )
        .unwrap();
        let arrow = ArrowSpmm::new(&d).unwrap();
        let ra = arrow.run(&x, 2).unwrap();
        let c = (p as f64).sqrt() as u32;
        let a15 = arrow_matrix::spmm::A15dSpmm::new(&a, p, c).unwrap();
        let r15 = a15.run(&x, 2).unwrap();
        let ratio = r15.volume_per_iter() / ra.volume_per_iter();
        ratios.push(ratio);
        assert!(
            ratio > 1.3,
            "p={p}: 1.5D/arrow volume ratio only {ratio:.2}"
        );
    }
    assert!(
        ratios[1] > ratios[0] * 0.9,
        "volume advantage should not shrink with p: {ratios:?}"
    );
}

/// §5 intro: any low-diameter tree has Ω(n / log n) bandwidth, yet its
/// arrow decomposition has small width — the motivating separation.
#[test]
fn tree_bandwidth_vs_arrow_width_separation() {
    let n = 1023u32;
    let tree: CsrMatrix<f64> = basic::complete_ary_tree(2, n).to_adjacency();
    // BFS order (natural here) has bandwidth Θ(n/2) — and NO order can be
    // better than (n-1)/D = (n-1)/(2 log n).
    let natural_bw = bandwidth(&tree);
    assert!(natural_bw as f64 >= (n as f64) / (2.0 * (n as f64).log2()));
    // The decomposition achieves width 32 with small order.
    let d = la_decompose(
        &tree,
        &DecomposeConfig::with_width(32),
        &mut RandomForestLa::new(2),
    )
    .unwrap();
    assert_eq!(d.validate(&tree).unwrap(), 0.0);
    assert!(d.order() <= 8, "order {}", d.order());
}

/// §7.2: the arrow decomposition needs 15–100× fewer nonzero blocks than
/// direct 1.5D tiling; largest effects on star-heavy data. At test scale
/// we require ≥ 3× on MAWI and the ratio to grow as b shrinks.
#[test]
fn block_count_reduction_grows_as_b_shrinks() {
    let (_, a) = mawi(4096);
    let mut ratios = Vec::new();
    for b in [512u32, 128, 32] {
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(3),
        )
        .unwrap();
        let s = DecompositionStats::of(&d);
        let ratio = direct_tiling_nonzero_blocks(&a, b) as f64 / s.total_nonzero_tiles() as f64;
        ratios.push(ratio);
    }
    assert!(ratios[0] > 3.0, "ratios {ratios:?}");
    assert!(
        ratios[2] > ratios[0],
        "reduction should grow as b shrinks: {ratios:?}"
    );
}

/// §7.2: "the second matrix contained ... less than 0.1%-13% of the rows"
/// on the sparse datasets.
#[test]
fn second_level_is_small_on_sparse_datasets() {
    for kind in [
        datasets::DatasetKind::Mawi,
        datasets::DatasetKind::GenBank,
        datasets::DatasetKind::OsmEurope,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a: CsrMatrix<f64> = kind.generate(4000, &mut rng).to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(200),
            &mut RandomForestLa::new(4),
        )
        .unwrap();
        let s = DecompositionStats::of(&d);
        assert!(
            s.second_level_row_fraction <= 0.13,
            "{}: second level has {:.1}% of rows",
            kind.name(),
            100.0 * s.second_level_row_fraction
        );
    }
}

/// Figure 6's claim direction: with constant arrow width, arrow's
/// simulated per-iteration time grows far slower than n.
#[test]
fn weak_scaling_time_grows_sublinearly() {
    let k = 8;
    let b = 256;
    let mut times = Vec::new();
    for n in [2048u32, 8192] {
        let (_, a) = mawi(n);
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(6),
        )
        .unwrap();
        let alg = ArrowSpmm::new(&d).unwrap();
        let x = DenseMatrix::from_fn(n, k, |r, _| (r % 7) as f64);
        times.push(alg.run(&x, 2).unwrap().sim_time_per_iter());
    }
    // n grew 4×; arrow time must grow well below 4× (paper: ~flat).
    let growth = times[1] / times[0];
    assert!(
        growth < 2.5,
        "weak-scaling growth {growth:.2} too steep: {times:?}"
    );
}
